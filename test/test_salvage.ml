(* Storage chaos + degraded-mode salvage: the fault-injection shim is
   deterministic, salvage reads deliver only semantically valid events
   with loss quantified (never silent), clean artifacts are untouched by
   every salvage path, v2 snapshots self-heal from the trailer, and
   campaign scrub quarantines without deleting. *)

open Wsc_workload
open Wsc_trace
module Fault = Wsc_os.Fault
module Storage = Wsc_os.Storage
module Persist = Wsc_persist.Persist
module Campaign = Wsc_fleet.Campaign
module Units = Wsc_substrate.Units

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)
let qcheck t = QCheck_alcotest.to_alcotest t

let with_temp f =
  let path = Filename.temp_file "wsc_salvage" ".wtrace" in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let with_temp_dir f =
  let dir = Filename.temp_file "wsc_salvage" ".d" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let rec rm_rf p =
    if Sys.is_directory p then begin
      Array.iter (fun x -> rm_rf (Filename.concat p x)) (Sys.readdir p);
      Unix.rmdir p
    end
    else Sys.remove p
  in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc s)

let write_events ?storage path events =
  Writer.with_file ?storage path (fun w -> List.iter (Writer.add w) events)

(* {1 Deterministic storage fault schedules} *)

let test_fault_schedule_pure () =
  let c = { Fault.no_storage_faults with Fault.storage_seed = 7; flip_rate = 0.01 } in
  let d1 = Fault.write_damage c ~path:"a/b.wtrace" ~op_index:3 ~len:100_000 in
  let d2 = Fault.write_damage c ~path:"a/b.wtrace" ~op_index:3 ~len:100_000 in
  check_bool "same (seed, path, op) => same damage" true (d1 = d2);
  let d3 = Fault.write_damage c ~path:"a/b.wtrace" ~op_index:4 ~len:100_000 in
  let d4 = Fault.write_damage c ~path:"other.wtrace" ~op_index:3 ~len:100_000 in
  check_bool "op index changes the draw" true (d1 <> d3);
  check_bool "path changes the draw" true (d1 <> d4);
  check_bool "flips drawn at 1% over 100k bytes" true (d1.Fault.flips <> []);
  List.iter
    (fun (off, bit) ->
      check_bool "flip offset in range" true (off >= 0 && off < 100_000);
      check_bool "flip bit in range" true (bit >= 0 && bit < 8))
    d1.Fault.flips

let test_inactive_shim_is_transparent () =
  with_temp @@ fun a ->
  with_temp @@ fun b ->
  let events =
    List.init 3000 (fun i -> Trace.Alloc { id = i; size = 1 + (i mod 97); cpu = i mod 5 })
  in
  write_events a events;
  write_events ~storage:(Storage.create ()) b events;
  check_string "no-fault shim output is bit-identical" (read_file a) (read_file b)

(* {1 Trace salvage: golden single-block damage} *)

(* N full blocks of allocations; one flipped byte in the first block's
   payload must cost exactly that block: N-1 blocks, 1024 events lost,
   loss exact, everything after the gap delivered. *)
let test_golden_single_block_loss () =
  with_temp @@ fun path ->
  let blocks = 8 in
  let per_block = Codec.block_flush_events in
  let events =
    List.init (blocks * per_block) (fun i ->
        Trace.Alloc { id = i; size = 1 + (i mod 513); cpu = i mod 8 })
  in
  write_events path events;
  let data = read_file path in
  let pos = Codec.header_len + 20 in
  let b = Bytes.of_string data in
  Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x40));
  write_file path (Bytes.to_string b);
  let delivered = ref 0 in
  let rep = Salvage.scan ~on_event:(fun _ -> incr delivered) path in
  check_int "blocks recovered" (blocks - 1) rep.Salvage.blocks_recovered;
  check_int "events recovered" ((blocks - 1) * per_block) rep.Salvage.events_recovered;
  check_int "delivered = recovered" rep.Salvage.events_recovered !delivered;
  check_int "events lost = one block" per_block rep.Salvage.events_lost;
  check_bool "loss is exact" true rep.Salvage.loss_exact;
  check_int "one damaged region" 1 (List.length rep.Salvage.damage);
  check_int "nothing dropped" 0 rep.Salvage.events_dropped;
  check_bool "eos still present" false rep.Salvage.missing_eos

let test_clean_trace_repair_identity () =
  with_temp @@ fun src ->
  with_temp @@ fun dst ->
  let events =
    List.concat_map
      (fun i ->
        [
          Trace.Alloc { id = i; size = 1 + (i mod 200); cpu = i mod 3 };
          Trace.Advance { dt_ns = 1e6 };
          Trace.Free { id = i; cpu = (i + 1) mod 3 };
        ])
      (List.init 2000 Fun.id)
  in
  write_events src events;
  let rep = Salvage.repair ~src ~dst () in
  check_bool "clean report" true (Salvage.clean rep);
  check_string "repair of a clean trace is the identity" (read_file src) (read_file dst)

(* {1 Trace salvage: corruption fuzz} *)

(* Random valid event streams (borrowed shape from test_trace_stream). *)
let gen_events rand =
  let n = 200 + Random.State.int rand 3000 in
  let live = ref [] and next = ref 0 in
  let dts = [| 0.0; 1e6; 0.25; 1e12 |] in
  let evs = ref [] in
  for _ = 1 to n do
    match Random.State.int rand 100 with
    | r when r < 45 || !live = [] ->
      let id = !next in
      incr next;
      live := id :: !live;
      evs := Trace.Alloc { id; size = 1 + Random.State.int rand 4096; cpu = Random.State.int rand 70 } :: !evs
    | r when r < 80 ->
      let k = Random.State.int rand (List.length !live) in
      let id = List.nth !live k in
      live := List.filter (fun x -> x <> id) !live;
      evs := Trace.Free { id; cpu = Random.State.int rand 8 } :: !evs
    | r when r < 93 -> evs := Trace.Advance { dt_ns = dts.(Random.State.int rand 4) } :: !evs
    | _ -> evs := Trace.Retire { cpu = Random.State.int rand 8; flush = Random.State.bool rand } :: !evs
  done;
  List.rev !evs

(* A stream with the positions to damage: flip count and a seed for where. *)
let fuzz_case =
  QCheck.make
    ~print:(fun (n, flips, seed) -> Printf.sprintf "events=%d flips=%d seed=%d" n flips seed)
    QCheck.Gen.(
      map
        (fun ((a, b), c) -> (a, b, c))
        (pair (pair (int_range 0 1) (int_range 1 12)) (int_range 0 10_000)))

let test_salvage_fuzz =
  qcheck
    (QCheck.Test.make ~name:"salvage_fuzz_never_raises_never_invalid" ~count:60 fuzz_case
       (fun (_, flips, seed) ->
         with_temp @@ fun path ->
         let rand = Random.State.make [| seed |] in
         let events = gen_events rand in
         write_events path events;
         let data = Bytes.of_string (read_file path) in
         (* Damage [flips] random bytes anywhere past the magic (the header
            itself is covered by a fuzzy sniff, tested separately). *)
         for _ = 1 to flips do
           let pos = Codec.header_len + Random.State.int rand (Bytes.length data - Codec.header_len) in
           Bytes.set data pos
             (Char.chr (Char.code (Bytes.get data pos) lxor (1 lsl Random.State.int rand 8)))
         done;
         write_file path (Bytes.to_string data);
         (* Salvage must not raise, and every delivered event must be
            semantically valid: re-encoding through the strict writer (which
            enforces validity) must succeed. *)
         let total = List.length events in
         let delivered = ref 0 in
         let reenc = Writer.with_file (path ^ ".re") (fun w ->
             let rep = Salvage.scan ~on_event:(fun ev -> incr delivered; Writer.add w ev) path in
             rep)
         in
         Sys.remove (path ^ ".re");
         let rep = reenc in
         let ok_count = rep.Salvage.events_recovered = !delivered in
         (* Loss accounting: recovered + dropped + lost covers the stream
            exactly when every damaged region was measured, and never
            overcounts.  Strict equality is only guaranteed for a single
            flip: multiple flips can damage a block's payload and its
            header count together, and the count (uncovered by the payload
            CRC) is then an honest but wrong exact figure. *)
         let accounted = rep.Salvage.events_recovered + rep.Salvage.events_dropped + rep.Salvage.events_lost in
         let ok_accounting =
           if rep.Salvage.loss_exact && (not rep.Salvage.missing_eos) && flips = 1
           then accounted = total
           else rep.Salvage.events_recovered + rep.Salvage.events_dropped <= total
         in
         ok_count && ok_accounting))

(* One bit flipped in the stream body: the report must confine the blame
   to a single damaged region and keep the accounting honest.  A payload
   flip leaves the frame header trusted, so the loss is exact and the
   counts cover the stream; a flip landing in a block header forces a
   byte-scan resync, and the report must say so ([loss_exact = false])
   rather than overcount. *)
let test_salvage_payload_flip_loss_exact =
  qcheck
    (QCheck.Test.make ~name:"salvage_single_flip_loss_honest" ~count:40
       QCheck.(int_range 0 10_000)
       (fun seed ->
         with_temp @@ fun path ->
         let rand = Random.State.make [| seed |] in
         let events = gen_events rand in
         write_events path events;
         let data = Bytes.of_string (read_file path) in
         let body = Bytes.length data - Codec.header_len - 6 (* EOS *) in
         QCheck.assume (body > 0);
         let pos = Codec.header_len + Random.State.int rand body in
         Bytes.set data pos (Char.chr (Char.code (Bytes.get data pos) lxor 1));
         write_file path (Bytes.to_string data);
         let rep = Salvage.scan path in
         let total = List.length events in
         List.length rep.Salvage.damage = 1
         && (not rep.Salvage.missing_eos)
         &&
         if rep.Salvage.loss_exact then
           rep.Salvage.events_recovered + rep.Salvage.events_dropped
           + rep.Salvage.events_lost
           = total
         else rep.Salvage.events_recovered + rep.Salvage.events_dropped <= total))

(* {1 Torn writes and killed writers} *)

let test_torn_write_loses_tail_not_head () =
  (* torn_write_rate 1 tears the very first write op; whatever landed must
     still salvage to a valid (possibly empty) prefix with missing_eos. *)
  with_temp @@ fun path ->
  let st =
    Storage.create
      ~faults:{ Fault.no_storage_faults with Fault.storage_seed = 3; torn_write_rate = 1.0 }
      ()
  in
  let events =
    List.init 5000 (fun i -> Trace.Alloc { id = i; size = 64; cpu = 0 })
  in
  write_events ~storage:st path events;
  check_bool "a tear was injected" true (Storage.torn_writes st > 0);
  let delivered = ref 0 in
  let rep = Salvage.scan ~on_event:(fun _ -> incr delivered) path in
  check_bool "torn trace reports missing eos or damage" true
    (rep.Salvage.missing_eos || rep.Salvage.damage <> []);
  check_bool "recovered a prefix only" true (!delivered <= List.length events)

(* A killed snapshot writer must never publish a half-valid snapshot: the
   torn tmp either fails to publish (rename draw) or publishes a file the
   loader rejects as Corrupt — and an honest full write loads back equal. *)
let test_killed_snapshot_writer_never_half_valid () =
  with_temp_dir @@ fun dir ->
  let spec =
    { Campaign.default_spec with Campaign.seed = 3; machines = 4; duration_ns = 0.05 *. Units.sec; shard_size = 4 }
  in
  let captured = ref None in
  let (_ : Campaign.result) =
    Campaign.run ~on_shard:(fun ~shard:_ ck -> captured := Some ck) spec
  in
  let ck = Option.get !captured in
  let outcomes = ref [] in
  for seed = 1 to 20 do
    let st =
      Storage.create
        ~faults:
          { Fault.no_storage_faults with Fault.storage_seed = seed; torn_write_rate = 0.9;
            rename_failure_rate = 0.3 }
        ()
    in
    let path = Filename.concat dir (Printf.sprintf "ck-%d.wsnap" seed) in
    Persist.save_campaign ~storage:st ck ~path;
    let outcome =
      if not (Sys.file_exists path) then `Unpublished
      else
        match Persist.load_campaign ~path with
        | loaded ->
          check_bool "published snapshot restores the same checkpoint" true
            (Campaign.checkpoint_next_index loaded = Campaign.checkpoint_next_index ck
            && Campaign.checkpoint_sim_ns loaded = Campaign.checkpoint_sim_ns ck
            && Campaign.checkpoint_spec_digest loaded = Campaign.checkpoint_spec_digest ck);
          `Loaded
        | exception Persist.Corrupt _ -> `Rejected
    in
    outcomes := outcome :: !outcomes
  done;
  (* The schedule at these seeds must actually exercise the damage path. *)
  check_bool "some writes were torn or unpublished" true
    (List.exists (fun o -> o = `Rejected || o = `Unpublished) !outcomes)

let test_stale_tmp_cleared_on_save () =
  with_temp_dir @@ fun dir ->
  let path = Filename.concat dir "snap.wsnap" in
  write_file (path ^ ".tmp") "garbage from a crashed writer";
  let spec =
    { Campaign.default_spec with Campaign.seed = 5; machines = 2; duration_ns = 0.05 *. Units.sec; shard_size = 2 }
  in
  let captured = ref None in
  let (_ : Campaign.result) =
    Campaign.run ~on_shard:(fun ~shard:_ ck -> captured := Some ck) spec
  in
  Persist.save_campaign (Option.get !captured) ~path;
  check_bool "stale tmp removed" false (Sys.file_exists (path ^ ".tmp"));
  check_bool "snapshot intact" true (Persist.audit ~path:path).Persist.a_intact

(* {1 Snapshot self-healing (v2 trailer)} *)

let saved_checkpoint f =
  with_temp_dir @@ fun dir ->
  let spec =
    { Campaign.default_spec with Campaign.seed = 11; machines = 3; duration_ns = 0.05 *. Units.sec; shard_size = 3 }
  in
  let captured = ref None in
  let (_ : Campaign.result) =
    Campaign.run ~on_shard:(fun ~shard:_ ck -> captured := Some ck) spec
  in
  let path = Filename.concat dir "ck.wsnap" in
  Persist.save_campaign (Option.get !captured) ~path;
  f dir path (read_file path)

(* Single-byte snapshot fuzz: audit never raises except for header damage;
   a salvageable file repairs bit-identically to the pristine bytes (the
   canonical container construction is shared by save and repair); an
   unsalvageable one raises Corrupt from repair.  Never a silent wrong
   answer. *)
let test_snapshot_flip_fuzz =
  qcheck
    (QCheck.Test.make ~name:"snapshot_single_flip_salvage_or_reject" ~count:40
       QCheck.(pair (int_range 0 100_000) (int_range 0 7))
       (fun (posseed, bit) ->
         saved_checkpoint @@ fun dir path pristine ->
         let pos = posseed mod String.length pristine in
         let b = Bytes.of_string pristine in
         Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor (1 lsl bit)));
         write_file path (Bytes.to_string b);
         let fixed = Filename.concat dir "fixed.wsnap" in
         match Persist.audit ~path with
         | exception Persist.Corrupt { section; _ } -> section = "header" && pos < 16
         | a ->
           if a.Persist.a_salvageable then begin
             let (_ : Persist.audit) = Persist.repair ~src:path ~dst:fixed () in
             read_file fixed = pristine
           end
           else (
             match Persist.repair ~src:path ~dst:fixed () with
             | (_ : Persist.audit) -> false
             | exception Persist.Corrupt _ -> true)))

let test_snapshot_damaged_manifest_repairs_bit_identical () =
  saved_checkpoint @@ fun dir path pristine ->
  (* Byte 46 sits in the primary meta/manifest region, well before the
     state payload and the trailer. *)
  let b = Bytes.of_string pristine in
  Bytes.set b 46 (Char.chr (Char.code (Bytes.get b 46) lxor 0xff));
  write_file path (Bytes.to_string b);
  let a = Persist.audit ~path in
  check_bool "not intact" false a.Persist.a_intact;
  check_bool "salvageable" true a.Persist.a_salvageable;
  check_bool "audit notes name the damage" true (Persist.audit_notes a <> []);
  let fixed = Filename.concat dir "fixed.wsnap" in
  let (_ : Persist.audit) = Persist.repair ~src:path ~dst:fixed () in
  check_string "repair restores the pristine bytes" pristine (read_file fixed);
  (* info on the damaged file still works (degraded read, state untouched). *)
  check_string "info reads through the damage" "campaign" (Persist.info ~path).Persist.kind

let test_snapshot_truncation_loses_trailer_first () =
  saved_checkpoint @@ fun _dir path pristine ->
  (* Shaving the trailer suffix costs redundancy, never correctness. *)
  write_file path (String.sub pristine 0 (String.length pristine - 10));
  let a = Persist.audit ~path in
  check_bool "trailer gone" false a.Persist.a_trailer_intact;
  check_bool "still salvageable" true a.Persist.a_salvageable;
  let (_ : Campaign.checkpoint) = Persist.load_campaign ~path in
  (* Cutting into the state payload is beyond salvage and says so. *)
  write_file path (String.sub pristine 0 (String.length pristine / 2));
  match Persist.load_campaign ~path with
  | _ -> Alcotest.fail "half a snapshot loaded"
  | exception Persist.Corrupt { section; _ } -> check_string "attribution" "state" section

(* {1 Campaign scrub} *)

let test_scrub_quarantines_and_resume_matches () =
  with_temp_dir @@ fun dir ->
  let spec =
    { Campaign.default_spec with Campaign.seed = 19; machines = 9; duration_ns = 0.05 *. Units.sec; shard_size = 3 }
  in
  let reference = Persist.run_campaign ~resume_dir:dir spec in
  let agg = Campaign.render_aggregate reference.Campaign.r_aggregate in
  (* Corrupt the newest shard's state and drop a stale tmp alongside. *)
  let last = Persist.campaign_shard_path ~dir 2 in
  let data = read_file last in
  let b = Bytes.of_string data in
  Bytes.set b (Bytes.length b / 2) (Char.chr (Char.code (Bytes.get b (Bytes.length b / 2)) lxor 0xff));
  write_file last (Bytes.to_string b);
  write_file (Filename.concat dir "campaign-0003.wsnap.tmp") "torn";
  let r = Persist.scrub_campaign_dir ~dir in
  check_int "three shards examined" 3 (List.length r.Persist.sr_entries);
  check_int "one shard quarantined" 1 (List.length r.Persist.sr_quarantined);
  check_int "one stale tmp quarantined" 1 (List.length r.Persist.sr_stale_tmp);
  (match r.Persist.sr_best with
  | Some (shard, machines) ->
    check_int "best surviving shard" 1 shard;
    check_int "coverage of best shard" 6 machines
  | None -> Alcotest.fail "scrub found no usable checkpoint");
  (* Nothing was deleted: the damaged shard still exists under quarantine. *)
  List.iter
    (fun (_old, q) -> check_bool "quarantine file kept" true (Sys.file_exists q))
    r.Persist.sr_quarantined;
  check_bool "damaged shard moved aside" false (Sys.file_exists last);
  (* Resume after scrub reproduces the fault-free aggregate. *)
  let resumed = Persist.run_campaign ~resume_dir:dir spec in
  check_string "scrub + resume aggregate matches" agg
    (Campaign.render_aggregate resumed.Campaign.r_aggregate);
  (* Scrubbing the now-healthy directory is a no-op. *)
  let again = Persist.scrub_campaign_dir ~dir in
  check_int "second scrub quarantines nothing" 0 (List.length again.Persist.sr_quarantined)

let suite =
  [
    ( "storage-faults",
      [
        Alcotest.test_case "schedule is pure in (seed, path, op)" `Quick
          test_fault_schedule_pure;
        Alcotest.test_case "inactive shim transparent" `Quick
          test_inactive_shim_is_transparent;
      ] );
    ( "trace-salvage",
      [
        Alcotest.test_case "golden: single block damage costs one block" `Quick
          test_golden_single_block_loss;
        Alcotest.test_case "clean repair is the identity" `Quick
          test_clean_trace_repair_identity;
        test_salvage_fuzz;
        test_salvage_payload_flip_loss_exact;
        Alcotest.test_case "torn write loses tail not head" `Quick
          test_torn_write_loses_tail_not_head;
      ] );
    ( "snapshot-salvage",
      [
        Alcotest.test_case "killed writer never half-valid" `Quick
          test_killed_snapshot_writer_never_half_valid;
        Alcotest.test_case "stale tmp cleared on save" `Quick
          test_stale_tmp_cleared_on_save;
        test_snapshot_flip_fuzz;
        Alcotest.test_case "damaged manifest repairs bit-identical" `Quick
          test_snapshot_damaged_manifest_repairs_bit_identical;
        Alcotest.test_case "truncation loses trailer first" `Quick
          test_snapshot_truncation_loses_trailer_first;
      ] );
    ( "campaign-scrub",
      [
        Alcotest.test_case "scrub quarantines, resume matches" `Quick
          test_scrub_quarantines_and_resume_matches;
      ] );
  ]
