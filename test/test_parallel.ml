(* Tests for deterministic domain-parallel execution: the Parallel pool's
   map contract (ordered, exactly-once, exception-safe, nest-safe), the
   bit-identical N-domain vs 1-domain guarantee for fleet and A/B runs, the
   Event_heap/Binheap pop-order equivalence, and the bounded series
   accumulators. *)

open Wsc_substrate
open Wsc_fleet
module Config = Wsc_tcmalloc.Config
module Malloc = Wsc_tcmalloc.Malloc
module Backend = Wsc_backend.Backend
module Telemetry = Wsc_tcmalloc.Telemetry
module Apps = Wsc_workload.Apps
module Driver = Wsc_workload.Driver
module Topology = Wsc_hw.Topology

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let qcheck t = QCheck_alcotest.to_alcotest t

(* {1 Parallel.map contract} *)

let map_matches_sequential =
  QCheck.Test.make ~name:"parallel_map_matches_sequential_for_any_jobs" ~count:50
    QCheck.(pair (int_range 1 6) (list small_int))
    (fun (jobs, xs) ->
      let arr = Array.of_list xs in
      let f x = (x * 37) lxor (x lsr 2) in
      Parallel.map ~jobs f arr = Array.map f arr)

let map_exactly_once =
  QCheck.Test.make ~name:"parallel_map_runs_each_task_exactly_once_in_order" ~count:30
    QCheck.(pair (int_range 1 6) (int_range 0 200))
    (fun (jobs, n) ->
      let hits = Array.init n (fun _ -> Atomic.make 0) in
      let out =
        Parallel.map ~jobs
          (fun i ->
            Atomic.incr hits.(i);
            i)
          (Array.init n Fun.id)
      in
      out = Array.init n Fun.id && Array.for_all (fun a -> Atomic.get a = 1) hits)

let test_map_propagates_exception () =
  match
    Parallel.map ~jobs:4 (fun i -> if i >= 3 then failwith "boom" else i) (Array.init 8 Fun.id)
  with
  | _ -> Alcotest.fail "expected the task failure to re-raise"
  | exception Failure msg -> Alcotest.(check string) "task exception" "boom" msg

let test_nested_map_completes () =
  (* A map issued from inside a task must degrade to sequential execution,
     not deadlock on the busy pool. *)
  let sums =
    Parallel.map ~jobs:4
      (fun n ->
        Array.fold_left ( + ) 0 (Parallel.map ~jobs:4 (fun i -> i * i) (Array.init n Fun.id)))
      [| 10; 20; 30; 40 |]
  in
  let expect n = Array.fold_left ( + ) 0 (Array.init n (fun i -> i * i)) in
  check_bool "nested results" true (sums = Array.map expect [| 10; 20; 30; 40 |])

let test_default_jobs_override () =
  Parallel.set_default_jobs 2;
  check_int "override wins" 2 (Parallel.default_jobs ());
  (match Parallel.set_default_jobs 0 with
  | () -> Alcotest.fail "jobs = 0 must be rejected"
  | exception Invalid_argument _ -> ());
  (* Leave the process in sequential-default mode for the other suites. *)
  Parallel.set_default_jobs 1;
  check_int "override reset" 1 (Parallel.default_jobs ())

(* {1 N-domain vs 1-domain bit-identical results} *)

let fleet_fingerprint fleet =
  List.map
    (fun (j : Machine.job) ->
      let tel = Backend.telemetry j.Machine.backend in
      ( Telemetry.alloc_count tel,
        Telemetry.free_count tel,
        Telemetry.live_requested_bytes tel,
        (Backend.heap_stats j.Machine.backend).Malloc.resident_bytes,
        Driver.requests_completed j.Machine.driver,
        Driver.avg_rss_bytes j.Machine.driver ))
    (Fleet.jobs fleet)

let test_fleet_parallel_determinism () =
  let run jobs =
    let fleet = Fleet.create ~seed:23 ~num_machines:4 () in
    let summaries =
      Fleet.run ~jobs fleet ~duration_ns:(2.0 *. Units.sec) ~epoch_ns:Units.ms
    in
    (summaries, fleet_fingerprint fleet)
  in
  check_bool "4-domain fleet == 1-domain fleet" true (run 1 = run 4)

let test_ab_parallel_determinism () =
  let run jobs =
    Ab_test.run_app ~jobs ~seed:3 ~replicas:2 ~warmup_ns:(1.0 *. Units.sec)
      ~duration_ns:(2.0 *. Units.sec) ~control:Config.baseline
      ~experiment:Config.all_optimizations Apps.redis
  in
  check_bool "4-domain A/B == 1-domain A/B" true (run 1 = run 4)

(* {1 Event_heap vs Binheap equivalence} *)

let event_heap_matches_binheap =
  QCheck.Test.make ~name:"event_heap_pop_order_matches_binheap" ~count:100
    QCheck.(list (pair (int_range 0 7) small_int))
    (fun entries ->
      (* Keys collide constantly (8 distinct values): equal-key pop order
         must match Binheap's exactly, including across bounded drains. *)
      let eh = Event_heap.create () in
      let bh = Binheap.create () in
      List.iteri
        (fun i (k, v) ->
          let key = float_of_int k in
          Event_heap.push eh key ~a:v ~b:i ~c:(i land 3);
          Binheap.push bh key (v, i))
        entries;
      let got = ref [] and want = ref [] in
      List.iter
        (fun bound ->
          Event_heap.drain_until eh bound (fun ~key ~a ~b ~c:_ ->
              got := (key, a, b) :: !got);
          List.iter (fun (k, (v, i)) -> want := (k, v, i) :: !want) (Binheap.pop_until bh bound))
        [ 2.0; 5.0; infinity ];
      Event_heap.is_empty eh && Binheap.is_empty bh && !got = !want)

(* {1 Bounded series accumulators} *)

let test_series_cap () =
  let clock = Clock.create () in
  let topology = Topology.default in
  let backend = Backend.create ~topology ~clock () in
  let sched = Wsc_os.Sched.spread topology ~first_cpu:0 ~cpus:8 ~domains:1 in
  let driver =
    Driver.create ~seed:5 ~series_cap:64 ~profile:Apps.fleet ~sched ~backend ~clock ()
  in
  (* Series ticks are 0.25 s of simulated time apart: 40 s ~ 160 ticks,
     which crosses the 64-sample cap more than once. *)
  Driver.run driver ~duration_ns:(40.0 *. Units.sec) ~epoch_ns:Units.ms;
  let samples = Driver.series_samples driver in
  check_bool "samples bounded" true (samples <= 64 && samples >= 32);
  let stride = Driver.series_stride driver in
  check_bool "stride doubled" true (stride > 1 && stride land (stride - 1) = 0);
  let series = Driver.thread_series driver in
  check_int "thread series length" samples (List.length series);
  check_int "rseq series length" samples (List.length (Driver.rseq_series driver));
  let times = List.map fst series in
  check_bool "times ascending" true (List.sort compare times = times)

let suite =
  [
    ( "parallel",
      [
        qcheck map_matches_sequential;
        qcheck map_exactly_once;
        Alcotest.test_case "map propagates task exception" `Quick test_map_propagates_exception;
        Alcotest.test_case "nested map completes" `Quick test_nested_map_completes;
        Alcotest.test_case "default jobs override" `Quick test_default_jobs_override;
        Alcotest.test_case "fleet 4-domain determinism" `Slow test_fleet_parallel_determinism;
        Alcotest.test_case "A/B 4-domain determinism" `Slow test_ab_parallel_determinism;
        qcheck event_heap_matches_binheap;
        Alcotest.test_case "series cap bounds accumulators" `Quick test_series_cap;
      ] );
  ]
