(* Tests for warm-state checkpoint/restore (wsc_persist): the bit-identity
   invariant at driver, machine and file level, container corruption
   detection (mirroring test_trace_stream's codec tests), and a qcheck
   property over random configs/seeds/split points. *)

open Wsc_substrate
module Config = Wsc_tcmalloc.Config
module Malloc = Wsc_tcmalloc.Malloc
module Backend = Wsc_backend.Backend
module Telemetry = Wsc_tcmalloc.Telemetry
module Audit = Wsc_tcmalloc.Audit
module Cost_model = Wsc_hw.Cost_model
module Topology = Wsc_hw.Topology
module Apps = Wsc_workload.Apps
module Profile = Wsc_workload.Profile
module Driver = Wsc_workload.Driver
module Machine = Wsc_fleet.Machine
module Persist = Wsc_persist.Persist

let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)
let qcheck t = QCheck_alcotest.to_alcotest t

let with_temp f =
  let path = Filename.temp_file "wsc_persist" ".wsnap" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc s)

(* Everything observable about one job: heap stats, telemetry counters,
   tier hits, driver progress, and a fresh audit.  Bit-identity means
   structural equality of this digest. *)
let job_digest driver =
  let backend = Driver.backend driver in
  let tel = Backend.telemetry backend in
  ( Backend.heap_stats backend,
    Telemetry.alloc_count tel,
    Telemetry.free_count tel,
    Telemetry.total_malloc_ns tel,
    List.map (fun tier -> Telemetry.hits tel tier) Cost_model.all_tiers,
    Driver.requests_completed driver,
    Driver.allocations driver,
    Driver.live_objects driver,
    Backend.audit backend )

let machine_digest machine =
  ( Clock.now (Machine.clock machine),
    List.map (fun (j : Machine.job) -> job_digest j.Machine.driver) (Machine.jobs machine)
  )

let sec = Units.sec
let ms = Units.ms

(* {1 Bit-identity} *)

(* The unit-test half of the ISSUE's bit-identity gate (the CI smoke job
   covers the CLI half): checkpoint mid-run, keep running the original to
   prove restore does not alias it, resume, continue — digest equal to an
   uninterrupted run of the same total duration. *)
let test_machine_checkpoint_bit_identity () =
  let mk () =
    Machine.create ~seed:5 ~platform:Topology.default
      ~rseq:{ Wsc_os.Rseq.seed = 5; preempt_prob = 0.002; max_restarts = 3 }
      ~audit_interval_ns:sec
      ~jobs:[ Apps.redis; Apps.fleet ] ()
  in
  let reference = mk () in
  Machine.run reference ~duration_ns:(2.0 *. sec) ~epoch_ns:ms;
  let split = mk () in
  Machine.run split ~duration_ns:(1.0 *. sec) ~epoch_ns:ms;
  let blob = Machine.checkpoint split in
  Machine.run split ~duration_ns:(0.5 *. sec) ~epoch_ns:ms;
  let resumed = Machine.resume blob in
  Machine.run resumed ~duration_ns:(1.0 *. sec) ~epoch_ns:ms;
  check_bool "resumed == uninterrupted" true
    (machine_digest reference = machine_digest resumed);
  check_bool "original diverged past the checkpoint" true
    (machine_digest split <> machine_digest resumed)

let test_driver_checkpoint_bit_identity () =
  let mk () =
    let clock = Clock.create () in
    let topology = Topology.default in
    let backend = Backend.create ~config:Config.all_optimizations ~topology ~clock () in
    let sched = Wsc_os.Sched.slice topology ~first_cpu:0 ~cpus:8 in
    Driver.create ~seed:9 ~profile:Apps.redis ~sched ~backend ~clock ()
  in
  let reference = mk () in
  Driver.run reference ~duration_ns:(1.5 *. sec) ~epoch_ns:ms;
  let split = mk () in
  Driver.run split ~duration_ns:(0.75 *. sec) ~epoch_ns:ms;
  let resumed = Driver.resume (Driver.checkpoint split) in
  Driver.run resumed ~duration_ns:(0.75 *. sec) ~epoch_ns:ms;
  check_bool "resumed == uninterrupted" true (job_digest reference = job_digest resumed)

(* Persist.run_machine with an absolute target must reproduce Machine.run's
   epoch sequence exactly (that is what makes segmented CLI runs equal). *)
let test_run_machine_epoch_sequence () =
  let mk () =
    Machine.create ~seed:2 ~platform:Topology.default ~jobs:[ Apps.fleet ] ()
  in
  let a = mk () in
  Machine.run a ~duration_ns:(1.2 *. sec) ~epoch_ns:ms;
  let b = mk () in
  Persist.run_machine b ~until_ns:(0.4 *. sec) ~epoch_ns:ms;
  Persist.run_machine b ~until_ns:(1.2 *. sec) ~epoch_ns:ms;
  check_bool "segmented == one-shot" true (machine_digest a = machine_digest b)

(* {1 File round-trip} *)

let test_file_round_trip () =
  with_temp @@ fun path ->
  let mk () =
    Machine.create ~seed:7 ~platform:Topology.default ~jobs:[ Apps.redis ] ()
  in
  let reference = mk () in
  Machine.run reference ~duration_ns:(2.0 *. sec) ~epoch_ns:ms;
  let m = mk () in
  Persist.run_machine m ~until_ns:sec ~epoch_ns:ms ~checkpoint_path:path;
  let restored = Persist.load_machine ~path in
  Persist.run_machine restored ~until_ns:(2.0 *. sec) ~epoch_ns:ms;
  check_bool "file round-trip == uninterrupted" true
    (machine_digest reference = machine_digest restored);
  let info = Persist.info ~path in
  check_string "kind" "machine" info.Persist.kind;
  check_bool "records simulated time" true (info.Persist.sim_now_ns = sec);
  check_bool "one job, right profile" true
    (List.map fst info.Persist.jobs = [ Apps.redis.Profile.name ])

let test_driver_file_round_trip () =
  with_temp @@ fun path ->
  let clock = Clock.create () in
  let backend = Backend.create ~topology:Topology.default ~clock () in
  let sched = Wsc_os.Sched.slice Topology.default ~first_cpu:0 ~cpus:4 in
  let driver = Driver.create ~seed:3 ~profile:Apps.fleet ~sched ~backend ~clock () in
  Driver.run driver ~duration_ns:(0.5 *. sec) ~epoch_ns:ms;
  Persist.save_driver driver ~path ~note:"unit test";
  let restored = Persist.load_driver ~path in
  check_bool "restored digest matches" true (job_digest driver = job_digest restored);
  check_string "note survives" "unit test" (Persist.info ~path).Persist.note

(* {1 Corruption} *)

let saved_snapshot f =
  with_temp @@ fun path ->
  let m = Machine.create ~seed:1 ~platform:Topology.uniprocessor ~jobs:[ Apps.redis ] () in
  Machine.run m ~duration_ns:(0.2 *. sec) ~epoch_ns:ms;
  Persist.save_machine m ~path;
  f path (read_file path)

let expect_corrupt ~expected_section path =
  match Persist.load_machine ~path with
  | _ -> Alcotest.failf "load of damaged snapshot succeeded"
  | exception Persist.Corrupt { section; reason = _ } ->
    check_string "failing section" expected_section section

let test_corrupt_truncated () =
  saved_snapshot @@ fun path data ->
  (* Cut into the state payload: the error names the section that was cut
     short. *)
  write_file path (String.sub data 0 (String.length data / 2));
  expect_corrupt ~expected_section:"state" path;
  (* Shaving the last bytes only destroys the v2 trailer — redundancy, not
     data — so the load degrades gracefully instead of failing. *)
  saved_snapshot @@ fun path data ->
  write_file path (String.sub data 0 (String.length data - 10));
  let a = Persist.audit ~path in
  check_bool "trailer lost" false a.Persist.a_trailer_intact;
  check_bool "sections all intact" true a.Persist.a_salvageable;
  let (_ : Machine.t) = Persist.load_machine ~path in
  ()

let test_corrupt_flipped_byte () =
  saved_snapshot @@ fun path data ->
  let b = Bytes.of_string data in
  let pos = String.length data / 2 in
  Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x20));
  write_file path (Bytes.to_string b);
  expect_corrupt ~expected_section:"state" path

let test_corrupt_wrong_version () =
  saved_snapshot @@ fun path data ->
  let b = Bytes.of_string data in
  Bytes.set b 8 (Char.chr (Persist.format_version + 41));
  write_file path (Bytes.to_string b);
  expect_corrupt ~expected_section:"header" path

let test_corrupt_bad_magic () =
  saved_snapshot @@ fun path data ->
  write_file path ("XX" ^ String.sub data 2 (String.length data - 2));
  expect_corrupt ~expected_section:"header" path

let test_corrupt_wrong_kind () =
  with_temp @@ fun path ->
  let clock = Clock.create () in
  let backend = Backend.create ~topology:Topology.uniprocessor ~clock () in
  let sched = Wsc_os.Sched.slice Topology.uniprocessor ~first_cpu:0 ~cpus:1 in
  let driver = Driver.create ~seed:1 ~profile:Apps.redis ~sched ~backend ~clock () in
  Driver.run driver ~duration_ns:(0.05 *. sec) ~epoch_ns:ms;
  Persist.save_driver driver ~path;
  (match Persist.load_machine ~path with
  | _ -> Alcotest.failf "driver snapshot loaded as a machine"
  | exception Persist.Corrupt { section; _ } -> check_string "section" "meta" section);
  check_bool "but loads fine as what it is" true
    (job_digest (Persist.load_driver ~path) = job_digest driver)

(* {1 Property} *)

(* For random configs, seeds and split points: N epochs, snapshot, continue
   M epochs == uninterrupted N+M epochs — on heap stats, telemetry
   counters, and the heap auditor's report. *)
let test_split_equivalence_property =
  let configs =
    [|
      Config.baseline;
      Config.with_dynamic_per_cpu true Config.baseline;
      Config.with_nuca_transfer_cache true Config.baseline;
      Config.with_span_prioritization true Config.baseline;
      Config.with_lifetime_aware_filler true Config.baseline;
      Config.all_optimizations;
    |]
  in
  let apps = [| Apps.redis; Apps.fleet; Apps.monarch |] in
  qcheck
    (QCheck.Test.make ~name:"snapshot_split_equivalence" ~count:12
       QCheck.(
         quad (int_range 0 5) (int_range 0 2) (int_range 1 1000)
           (pair (int_range 20 150) (int_range 20 150)))
       (fun (config_i, app_i, seed, (n_epochs, m_epochs)) ->
         let config = configs.(config_i) and app = apps.(app_i) in
         let mk () =
           Machine.create ~seed ~config ~platform:Topology.default ~jobs:[ app ] ()
         in
         let epochs m k = Machine.run m ~duration_ns:(float_of_int k *. ms) ~epoch_ns:ms in
         let reference = mk () in
         epochs reference (n_epochs + m_epochs);
         let split = mk () in
         epochs split n_epochs;
         let resumed = Machine.resume (Machine.checkpoint split) in
         epochs resumed m_epochs;
         machine_digest reference = machine_digest resumed))

let suite =
  [
    ( "persist",
      [
        Alcotest.test_case "machine bit-identity" `Quick
          test_machine_checkpoint_bit_identity;
        Alcotest.test_case "driver bit-identity" `Quick
          test_driver_checkpoint_bit_identity;
        Alcotest.test_case "run_machine epoch sequence" `Quick
          test_run_machine_epoch_sequence;
        Alcotest.test_case "file round-trip + info" `Quick test_file_round_trip;
        Alcotest.test_case "driver file round-trip" `Quick test_driver_file_round_trip;
        Alcotest.test_case "corrupt: truncated" `Quick test_corrupt_truncated;
        Alcotest.test_case "corrupt: flipped byte" `Quick test_corrupt_flipped_byte;
        Alcotest.test_case "corrupt: wrong version" `Quick test_corrupt_wrong_version;
        Alcotest.test_case "corrupt: bad magic" `Quick test_corrupt_bad_magic;
        Alcotest.test_case "corrupt: wrong kind" `Quick test_corrupt_wrong_kind;
        test_split_equivalence_property;
      ] );
  ]
