(* Tests for trace record/replay and the sampler's heap-profile estimator. *)

open Wsc_substrate
open Wsc_workload
module Config = Wsc_tcmalloc.Config
module Malloc = Wsc_tcmalloc.Malloc
module Sampler = Wsc_tcmalloc.Sampler

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let tiny_trace =
  Trace.of_events
    [
      Trace.Alloc { id = 1; size = 100; cpu = 0 };
      Trace.Alloc { id = 2; size = 5000; cpu = 1 };
      Trace.Advance { dt_ns = 1e6 };
      Trace.Free { id = 1; cpu = 2 };
      Trace.Alloc { id = 3; size = 2 * Units.mib; cpu = 0 };
      Trace.Advance { dt_ns = 1e6 };
      Trace.Free { id = 3; cpu = 0 };
      Trace.Free { id = 2; cpu = 1 };
    ]

let test_trace_validation () =
  Alcotest.check_raises "free before alloc"
    (Invalid_argument "Trace: event 0: free of unknown id 7") (fun () ->
      ignore (Trace.of_events [ Trace.Free { id = 7; cpu = 0 } ]));
  Alcotest.check_raises "double alloc of id"
    (Invalid_argument "Trace: event 1: id 1 already live") (fun () ->
      ignore
        (Trace.of_events
           [ Trace.Alloc { id = 1; size = 8; cpu = 0 }; Trace.Alloc { id = 1; size = 8; cpu = 0 } ]));
  Alcotest.check_raises "bad size" (Invalid_argument "Trace: event 0: size <= 0")
    (fun () -> ignore (Trace.of_events [ Trace.Alloc { id = 1; size = 0; cpu = 0 } ]))

let test_trace_replay_balanced () =
  let r = Trace.replay tiny_trace in
  check_int "allocations" 3 r.Trace.allocations;
  check_int "frees" 3 r.Trace.frees;
  check_int "nothing live at the end" 0
    r.Trace.final_stats.Malloc.live_requested_bytes;
  check_bool "peak observed" true (r.Trace.peak_rss_bytes > 0)

let test_trace_replay_deterministic () =
  let trace =
    Trace.synthesize ~seed:9 ~profile:Apps.f1_query ~duration_ns:(1.0 *. Units.sec) ()
  in
  let r1 = Trace.replay trace and r2 = Trace.replay trace in
  check_int "same allocations" r1.Trace.allocations r2.Trace.allocations;
  check_int "same final rss" r1.Trace.final_stats.Malloc.resident_bytes
    r2.Trace.final_stats.Malloc.resident_bytes

let test_trace_synthesize_balanced () =
  let trace =
    Trace.synthesize ~seed:4 ~profile:Apps.monarch ~duration_ns:(0.5 *. Units.sec) ()
  in
  check_bool "nonempty" true (Trace.length trace > 100);
  let r = Trace.replay trace in
  (* synthesize closes the trace with frees for everything live. *)
  check_int "replay balances" r.Trace.allocations r.Trace.frees;
  check_int "no leak" 0 r.Trace.final_stats.Malloc.live_requested_bytes

let test_trace_config_isolation () =
  (* The same trace under two configs: workload identical, allocator state
     differs — the memory numbers may differ but conservation holds. *)
  let trace =
    Trace.synthesize ~seed:5 ~profile:Apps.bigtable ~duration_ns:(1.0 *. Units.sec) ()
  in
  let a = Trace.replay ~config:Config.baseline trace in
  let b = Trace.replay ~config:Config.all_optimizations trace in
  check_int "identical workload" a.Trace.allocations b.Trace.allocations;
  check_int "both leak-free" 0
    (a.Trace.final_stats.Malloc.live_requested_bytes
    + b.Trace.final_stats.Malloc.live_requested_bytes)

let test_trace_save_load_roundtrip () =
  let path = Filename.temp_file "wsc_trace" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace.save tiny_trace path;
      let loaded = Trace.load path in
      check_bool "roundtrip preserves events" true
        (Trace.events loaded = Trace.events tiny_trace))

let test_trace_load_rejects_garbage () =
  let path = Filename.temp_file "wsc_trace" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "a 1 100 0\nnot a trace line\n";
      close_out oc;
      Alcotest.check_raises "parse error"
        (Invalid_argument "Trace.load: parse error at line 2") (fun () ->
          ignore (Trace.load path)))

let test_trace_roundtrip_property =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"trace_save_load_replay_identical" ~count:10
       QCheck.(int_range 1 500)
       (fun seed ->
         let trace =
           Trace.synthesize ~seed ~profile:Apps.redis ~duration_ns:(0.2 *. Units.sec) ()
         in
         let path = Filename.temp_file "wsc_trace_prop" ".txt" in
         Fun.protect
           ~finally:(fun () -> Sys.remove path)
           (fun () ->
             Trace.save trace path;
             let loaded = Trace.load path in
             let r1 = Trace.replay trace and r2 = Trace.replay loaded in
             r1.Trace.allocations = r2.Trace.allocations
             && r1.Trace.final_stats.Malloc.resident_bytes
                = r2.Trace.final_stats.Malloc.resident_bytes)))

(* {1 Sampler heap profiling} *)

let test_sampler_live_profile () =
  let s = Sampler.create ~period_bytes:1000 in
  (* Allocate 10 KB of 500 B objects: ~10 samples tracked while live. *)
  for i = 1 to 20 do
    ignore (Sampler.on_alloc s i ~size:500 ~now:0.0)
  done;
  check_int "estimate = tracked x period" (Sampler.live_tracked s * 1000)
    (Sampler.live_heap_estimate_bytes s);
  let profile = Sampler.live_profile s in
  check_bool "one size bin" true (List.length profile = 1);
  (match profile with
  | [ (bin, n) ] ->
    check_int "bin is 256 (2^8 <= 500)" 256 bin;
    check_int "all tracked in bin" (Sampler.live_tracked s) n
  | _ -> Alcotest.fail "unexpected profile shape");
  (* Freeing tracked objects empties the profile. *)
  for i = 1 to 20 do
    ignore (Sampler.on_free s i ~now:1.0)
  done;
  check_int "empty after frees" 0 (Sampler.live_heap_estimate_bytes s)

let suite =
  [
    ( "trace",
      [
        Alcotest.test_case "validation" `Quick test_trace_validation;
        Alcotest.test_case "replay balanced" `Quick test_trace_replay_balanced;
        Alcotest.test_case "replay deterministic" `Quick test_trace_replay_deterministic;
        Alcotest.test_case "synthesize balanced" `Quick test_trace_synthesize_balanced;
        Alcotest.test_case "config isolation" `Quick test_trace_config_isolation;
        Alcotest.test_case "save/load roundtrip" `Quick test_trace_save_load_roundtrip;
        Alcotest.test_case "load rejects garbage" `Quick test_trace_load_rejects_garbage;
        test_trace_roundtrip_property;
      ] );
    ( "sampler_profile",
      [ Alcotest.test_case "live profile" `Quick test_sampler_live_profile ] );
  ]
