(* Tests for the trace event vocabulary (streaming generator + text v1
   line codec) and the sampler's heap-profile estimator. *)

open Wsc_substrate
open Wsc_workload
module Sampler = Wsc_tcmalloc.Sampler

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Materialize a synthesized stream (fine at test scale). *)
let synth ?(seed = 1) ~profile ~duration_ns () =
  let out = ref [] in
  Trace.synthesize_into ~seed ~profile ~duration_ns (fun ev -> out := ev :: !out);
  List.rev !out

let test_synthesize_deterministic () =
  let run () = synth ~seed:9 ~profile:Apps.f1_query ~duration_ns:(0.5 *. Units.sec) () in
  check_bool "same seed, same stream" true (run () = run ());
  let other = synth ~seed:10 ~profile:Apps.f1_query ~duration_ns:(0.5 *. Units.sec) () in
  check_bool "different seed, different stream" true (run () <> other)

let test_synthesize_balanced () =
  let events = synth ~seed:4 ~profile:Apps.monarch ~duration_ns:(0.5 *. Units.sec) () in
  check_bool "nonempty" true (List.length events > 100);
  let live = Hashtbl.create 1024 in
  let allocs = ref 0 and frees = ref 0 in
  List.iter
    (fun ev ->
      match ev with
      | Trace.Alloc { id; size; cpu } ->
        check_bool "positive size" true (size > 0);
        check_bool "valid cpu" true (cpu >= 0);
        check_bool "fresh id" false (Hashtbl.mem live id);
        Hashtbl.replace live id ();
        incr allocs
      | Trace.Free { id; cpu } ->
        check_bool "valid cpu" true (cpu >= 0);
        check_bool "free of live id" true (Hashtbl.mem live id);
        Hashtbl.remove live id;
        incr frees
      | Trace.Advance { dt_ns } -> check_bool "positive dt" true (dt_ns > 0.0)
      | Trace.Retire _ -> ())
    events;
  (* synthesize_into closes the stream with frees for everything live. *)
  check_int "stream balances" !allocs !frees;
  check_int "nothing live at the end" 0 (Hashtbl.length live)

let test_line_roundtrip () =
  let fail () = Alcotest.fail "parse_line rejected a line_of_event output" in
  List.iter
    (fun ev ->
      let line = Trace.line_of_event ev in
      check_bool
        (Printf.sprintf "roundtrip %S" line)
        true
        (Trace.parse_line ~fail line = ev))
    [
      Trace.Alloc { id = 1; size = 100; cpu = 0 };
      Trace.Alloc { id = max_int; size = 2 * Units.mib; cpu = 63 };
      Trace.Free { id = 1; cpu = 2 };
      Trace.Advance { dt_ns = 1e6 };
      (* %.17g must survive floats with no short decimal form. *)
      Trace.Advance { dt_ns = 0.1 +. 0.2 };
      Trace.Retire { cpu = 5; flush = true };
      Trace.Retire { cpu = 0; flush = false };
    ]

let test_parse_line_rejects_garbage () =
  let saw_fail = ref 0 in
  let sentinel = Trace.Advance { dt_ns = 0.0 } in
  let fail () = incr saw_fail; sentinel in
  List.iter
    (fun line -> ignore (Trace.parse_line ~fail line))
    [ "not a trace line"; "a 1 100"; "a x y z"; "f 1"; "t"; "r 1"; "q 1 2" ];
  check_int "every malformed line rejected" 7 !saw_fail

let test_line_roundtrip_property =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"synthesized_stream_text_roundtrip" ~count:10
       QCheck.(int_range 1 500)
       (fun seed ->
         let events =
           synth ~seed ~profile:Apps.redis ~duration_ns:(0.2 *. Units.sec) ()
         in
         let fail () = QCheck.Test.fail_report "parse_line rejected a rendered line" in
         List.for_all
           (fun ev -> Trace.parse_line ~fail (Trace.line_of_event ev) = ev)
           events))

(* {1 Sampler heap profiling} *)

let test_sampler_live_profile () =
  let s = Sampler.create ~period_bytes:1000 in
  (* Allocate 10 KB of 500 B objects: ~10 samples tracked while live. *)
  for i = 1 to 20 do
    ignore (Sampler.on_alloc s i ~size:500 ~now:0.0)
  done;
  check_int "estimate = tracked x period" (Sampler.live_tracked s * 1000)
    (Sampler.live_heap_estimate_bytes s);
  let profile = Sampler.live_profile s in
  check_bool "one size bin" true (List.length profile = 1);
  (match profile with
  | [ (bin, n) ] ->
    check_int "bin is 256 (2^8 <= 500)" 256 bin;
    check_int "all tracked in bin" (Sampler.live_tracked s) n
  | _ -> Alcotest.fail "unexpected profile shape");
  (* Freeing tracked objects empties the profile. *)
  for i = 1 to 20 do
    ignore (Sampler.on_free s i ~now:1.0)
  done;
  check_int "empty after frees" 0 (Sampler.live_heap_estimate_bytes s)

let suite =
  [
    ( "trace",
      [
        Alcotest.test_case "synthesize deterministic" `Quick test_synthesize_deterministic;
        Alcotest.test_case "synthesize balanced" `Quick test_synthesize_balanced;
        Alcotest.test_case "line roundtrip" `Quick test_line_roundtrip;
        Alcotest.test_case "parse rejects garbage" `Quick test_parse_line_rejects_garbage;
        test_line_roundtrip_property;
      ] );
    ( "sampler_profile",
      [ Alcotest.test_case "live profile" `Quick test_sampler_live_profile ] );
  ]
