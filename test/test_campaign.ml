(* Tests for the supervisor retry layer and crash-tolerant fleet campaigns:
   backoff determinism, quarantine on budget exhaustion, and the headline
   property — a chaos-riddled, killed-and-resumed, multi-domain campaign
   aggregates bit-identically to a fault-free 1-domain run. *)

open Wsc_substrate
module Campaign = Wsc_fleet.Campaign
module Fault = Wsc_os.Fault
module Persist = Wsc_persist.Persist

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* {1 Supervisor} *)

let no_jitter =
  {
    Supervisor.max_attempts = 5;
    base_backoff_ns = 100.0 *. Units.ms;
    backoff_multiplier = 2.0;
    max_backoff_ns = 350.0 *. Units.ms;
    jitter = 0.0;
    seed = 1;
  }

let test_backoff_schedule_deterministic () =
  (* Jitter-free: the schedule is exactly base * mult^(failures-1), capped. *)
  Alcotest.(check (float 1e-9))
    "first retry" (100.0 *. Units.ms)
    (Supervisor.backoff_ns no_jitter ~task:3 ~failures:1);
  Alcotest.(check (float 1e-9))
    "second retry doubles" (200.0 *. Units.ms)
    (Supervisor.backoff_ns no_jitter ~task:3 ~failures:2);
  Alcotest.(check (float 1e-9))
    "third retry capped" (350.0 *. Units.ms)
    (Supervisor.backoff_ns no_jitter ~task:3 ~failures:3);
  (* With jitter the draw is seeded by (seed, task, failures): pure, and
     bounded by the jitter band around the capped base delay. *)
  let jittery = { no_jitter with Supervisor.jitter = 0.25; seed = 42 } in
  for task = 0 to 20 do
    for failures = 1 to 4 do
      let d1 = Supervisor.backoff_ns jittery ~task ~failures in
      let d2 = Supervisor.backoff_ns jittery ~task ~failures in
      check_bool "same (task, failures) -> same delay" true (d1 = d2);
      let base =
        Float.min
          (100.0 *. Units.ms *. (2.0 ** float_of_int (failures - 1)))
          (350.0 *. Units.ms)
      in
      check_bool "delay inside the jitter band" true
        (d1 >= 0.75 *. base && d1 < 1.25 *. base)
    done
  done

let test_supervisor_retry_then_succeed () =
  let outcome =
    Supervisor.run no_jitter ~task:7 (fun ~attempt ->
        if attempt <= 2 then
          raise (Supervisor.Failed (Supervisor.Crash "boom"))
        else "done")
  in
  check_bool "completed" true (outcome.Supervisor.verdict = Supervisor.Completed "done");
  check_int "three attempts" 3 outcome.Supervisor.attempts;
  check_int "two recorded failures" 2 (List.length outcome.Supervisor.failures);
  Alcotest.(check (float 1e-9))
    "backoff charged for both failures" (300.0 *. Units.ms)
    outcome.Supervisor.backoff_ns

let test_supervisor_exhaustion_quarantines () =
  let calls = ref 0 in
  let outcome =
    Supervisor.run no_jitter ~task:2 (fun ~attempt:_ ->
        incr calls;
        failwith "always broken")
  in
  check_bool "quarantined" true (outcome.Supervisor.verdict = Supervisor.Quarantined);
  check_int "budget fully used" no_jitter.Supervisor.max_attempts !calls;
  check_int "every failure recorded" no_jitter.Supervisor.max_attempts
    (List.length outcome.Supervisor.failures);
  (* No retry follows the final failure, so its backoff is not charged. *)
  Alcotest.(check (float 1e-9))
    "backoff excludes the terminal attempt"
    (100.0 *. Units.ms +. 200.0 *. Units.ms +. 350.0 *. Units.ms +. 350.0 *. Units.ms)
    outcome.Supervisor.backoff_ns

let test_supervisor_validate_rejection_retries () =
  let outcome =
    Supervisor.run no_jitter ~task:1
      ~validate:(fun v -> if v < 3 then Error "too small" else Ok ())
      (fun ~attempt -> attempt)
  in
  check_bool "eventually accepted" true
    (outcome.Supervisor.verdict = Supervisor.Completed 3);
  check_bool "rejections classified as Corrupt" true
    (List.for_all
       (function Supervisor.Corrupt _ -> true | _ -> false)
       outcome.Supervisor.failures);
  check_int "two rejections" 2 (List.length outcome.Supervisor.failures)

(* {1 Campaign} *)

let chaos =
  { Fault.chaos_seed = 5; crash_prob = 0.25; hang_prob = 0.15; corrupt_prob = 0.1 }

(* Generous retry budget: with a 0.5 total failure probability per attempt,
   quarantine needs 25 consecutive failures — never happens at test seeds,
   so the chaos aggregate must match the fault-free one exactly. *)
let patient = { Supervisor.default_policy with Supervisor.max_attempts = 25 }

let small_spec seed =
  {
    Campaign.default_spec with
    Campaign.seed;
    machines = 8;
    num_binaries = 8;
    jobs_per_machine = 2;
    duration_ns = 0.2 *. Units.sec;
    shard_size = 3;
    policy = patient;
  }

(* Deep-copy a live checkpoint (they mutate as the campaign continues). *)
let snapshot_checkpoint (ck : Campaign.checkpoint) : Campaign.checkpoint =
  Marshal.from_string (Marshal.to_string ck []) 0

let campaign_chaos_resume_bit_identity =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"chaos_killed_resumed_campaign_matches_fault_free"
       ~count:4
       QCheck.(int_range 1 1000)
       (fun seed ->
         let spec = { (small_spec seed) with Campaign.chaos } in
         let reference =
           Campaign.run ~jobs:1 { spec with Campaign.chaos = Fault.no_chaos }
         in
         (* Run one shard under chaos on 3 domains, "kill" it, then resume
            from the captured checkpoint. *)
         let captured = ref None in
         let first =
           Campaign.run ~jobs:3
             ~on_shard:(fun ~shard:_ ck -> captured := Some (snapshot_checkpoint ck))
             ~max_shards:1 spec
         in
         let resumed =
           match !captured with
           | None -> QCheck.Test.fail_report "no checkpoint captured"
           | Some ck -> Campaign.run ~jobs:3 ~resume:ck spec
         in
         (not first.Campaign.r_finished)
         && resumed.Campaign.r_finished
         && resumed.Campaign.r_quarantined = []
         && Campaign.render_aggregate resumed.Campaign.r_aggregate
            = Campaign.render_aggregate reference.Campaign.r_aggregate
         (* Chaos really happened: the robustness stats differ. *)
         && resumed.Campaign.r_stats.Campaign.st_attempts
            > reference.Campaign.r_stats.Campaign.st_attempts))

let test_campaign_exhaustion_partial_coverage () =
  (* Every attempt crashes and the budget is tiny: every machine must be
     quarantined, with a coverage report instead of an exception. *)
  let spec =
    {
      (small_spec 3) with
      Campaign.chaos =
        { Fault.chaos_seed = 1; crash_prob = 1.0; hang_prob = 0.0; corrupt_prob = 0.0 };
      policy = { Supervisor.default_policy with Supervisor.max_attempts = 2 };
    }
  in
  let r = Campaign.run ~jobs:2 spec in
  check_bool "finished despite losses" true r.Campaign.r_finished;
  check_int "no machine completed" 0 r.Campaign.r_aggregate.Campaign.a_machines;
  check_int "all machines quarantined" spec.Campaign.machines
    (List.length r.Campaign.r_quarantined);
  Alcotest.(check (float 0.0)) "zero coverage" 0.0 (Campaign.coverage r);
  check_int "both attempts burned per machine" (2 * spec.Campaign.machines)
    r.Campaign.r_stats.Campaign.st_attempts;
  check_int "every failure was a crash" (2 * spec.Campaign.machines)
    r.Campaign.r_stats.Campaign.st_crashes;
  check_bool "report lists the quarantines" true
    (List.for_all
       (fun q -> q.Campaign.q_attempts = 2)
       r.Campaign.r_quarantined);
  (* The quarantine list is index-ordered in the result. *)
  check_bool "quarantine list sorted" true
    (List.sort compare r.Campaign.r_quarantined = r.Campaign.r_quarantined)

let test_campaign_chaos_charges_simulated_time () =
  let spec = { (small_spec 11) with Campaign.chaos } in
  let clean = Campaign.run ~jobs:1 { spec with Campaign.chaos = Fault.no_chaos } in
  let noisy = Campaign.run ~jobs:1 spec in
  check_bool "retries charged backoff to simulated time" true
    (noisy.Campaign.r_stats.Campaign.st_backoff_ns > 0.0);
  check_bool "wasted attempts charged machine time" true
    (noisy.Campaign.r_stats.Campaign.st_sim_ns
    > clean.Campaign.r_stats.Campaign.st_sim_ns);
  check_bool "failure mix recorded" true
    (noisy.Campaign.r_stats.Campaign.st_crashes > 0
    || noisy.Campaign.r_stats.Campaign.st_stragglers > 0
    || noisy.Campaign.r_stats.Campaign.st_corruptions > 0)

let test_campaign_resume_rejects_other_spec () =
  let spec = small_spec 21 in
  let captured = ref None in
  let (_ : Campaign.result) =
    Campaign.run ~jobs:1
      ~on_shard:(fun ~shard:_ ck -> captured := Some (snapshot_checkpoint ck))
      ~max_shards:1 spec
  in
  let ck = Option.get !captured in
  let other = { spec with Campaign.seed = spec.Campaign.seed + 1 } in
  check_bool "digest mismatch rejected" true
    (try
       ignore (Campaign.run ~resume:ck other);
       false
     with Invalid_argument _ -> true)

(* {1 Durable shards (Persist)} *)

let with_temp_dir f =
  let dir = Filename.temp_file "wsc_campaign" "" in
  Sys.remove dir;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir && Sys.is_directory dir then begin
        Array.iter (fun n -> Sys.remove (Filename.concat dir n)) (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> f dir)

let test_campaign_durable_kill_resume () =
  let spec = { (small_spec 31) with Campaign.machines = 9; chaos } in
  let reference = Campaign.run ~jobs:1 { spec with Campaign.chaos = Fault.no_chaos } in
  with_temp_dir (fun dir ->
      (* "Kill" after two of three shards. *)
      let first = Persist.run_campaign ~jobs:4 ~resume_dir:dir ~max_shards:2 spec in
      check_bool "paused incomplete" true (not first.Campaign.r_finished);
      check_bool "both shard files exist" true
        (Sys.file_exists (Persist.campaign_shard_path ~dir 0)
        && Sys.file_exists (Persist.campaign_shard_path ~dir 1));
      (* Shard files are inspectable like any snapshot. *)
      let i = Persist.info ~path:(Persist.campaign_shard_path ~dir 1) in
      check_string "campaign kind" "campaign" i.Persist.kind;
      (* Resume picks up shard 1 and finishes the campaign. *)
      let resumed = Persist.run_campaign ~jobs:4 ~resume_dir:dir spec in
      check_bool "finished" true resumed.Campaign.r_finished;
      check_int "no quarantine at this seed" 0 (List.length resumed.Campaign.r_quarantined);
      check_string "resumed chaos aggregate == fault-free --jobs 1 aggregate"
        (Campaign.render_aggregate reference.Campaign.r_aggregate)
        (Campaign.render_aggregate resumed.Campaign.r_aggregate))

let test_campaign_corrupt_shard_falls_back () =
  let spec = { (small_spec 41) with Campaign.machines = 9; chaos } in
  let reference = Campaign.run ~jobs:1 { spec with Campaign.chaos = Fault.no_chaos } in
  with_temp_dir (fun dir ->
      let (_ : Campaign.result) =
        Persist.run_campaign ~jobs:2 ~resume_dir:dir ~max_shards:2 spec
      in
      (* Damage the newest shard: resume must fall back to shard 0 and
         still converge on the same aggregate. *)
      let path = Persist.campaign_shard_path ~dir 1 in
      let data = In_channel.with_open_bin path In_channel.input_all in
      let bytes = Bytes.of_string data in
      (* Mid-file lands in the state payload, which has no redundant copy
         in the v2 container — damage there is unrecoverable by design
         (tail offsets would land in the self-healing trailer). *)
      let pos = Bytes.length bytes / 2 in
      Bytes.set bytes pos (Char.chr (Char.code (Bytes.get bytes pos) lxor 0xFF));
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc (Bytes.to_string bytes));
      check_bool "damaged shard rejected by the loader" true
        (try
           ignore (Persist.load_campaign ~path);
           false
         with Persist.Corrupt _ -> true);
      let resumed = Persist.run_campaign ~jobs:2 ~resume_dir:dir spec in
      check_bool "finished" true resumed.Campaign.r_finished;
      check_string "fallback resume still bit-identical"
        (Campaign.render_aggregate reference.Campaign.r_aggregate)
        (Campaign.render_aggregate resumed.Campaign.r_aggregate))

let test_campaign_dir_spec_mismatch_is_corrupt () =
  let spec = { (small_spec 51) with Campaign.machines = 6 } in
  with_temp_dir (fun dir ->
      let (_ : Campaign.result) =
        Persist.run_campaign ~resume_dir:dir ~max_shards:1 spec
      in
      let other = { spec with Campaign.seed = spec.Campaign.seed + 1 } in
      check_bool "foreign shards rejected as Corrupt" true
        (try
           ignore (Persist.run_campaign ~resume_dir:dir other);
           false
         with Persist.Corrupt _ -> true))

let suite =
  [
    ( "supervisor",
      [
        Alcotest.test_case "backoff schedule deterministic" `Quick
          test_backoff_schedule_deterministic;
        Alcotest.test_case "retry then succeed" `Quick test_supervisor_retry_then_succeed;
        Alcotest.test_case "exhaustion quarantines" `Quick
          test_supervisor_exhaustion_quarantines;
        Alcotest.test_case "validate rejection retries" `Quick
          test_supervisor_validate_rejection_retries;
      ] );
    ( "campaign",
      [
        campaign_chaos_resume_bit_identity;
        Alcotest.test_case "exhaustion yields partial coverage" `Quick
          test_campaign_exhaustion_partial_coverage;
        Alcotest.test_case "chaos charges simulated time" `Quick
          test_campaign_chaos_charges_simulated_time;
        Alcotest.test_case "resume rejects other spec" `Quick
          test_campaign_resume_rejects_other_spec;
      ] );
    ( "campaign_shards",
      [
        Alcotest.test_case "durable kill and resume" `Quick
          test_campaign_durable_kill_resume;
        Alcotest.test_case "corrupt shard falls back" `Quick
          test_campaign_corrupt_shard_falls_back;
        Alcotest.test_case "foreign shard dir rejected" `Quick
          test_campaign_dir_spec_mismatch_is_corrupt;
      ] );
  ]
