(* Tests for wsc_workload: thread dynamics, profiles, and the driver. *)

open Wsc_substrate
open Wsc_workload
module Malloc = Wsc_tcmalloc.Malloc
module Backend = Wsc_backend.Backend
module Telemetry = Wsc_tcmalloc.Telemetry

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_close msg tol expected actual = Alcotest.(check (float tol)) msg expected actual

(* {1 Threads} *)

let test_threads_steady () =
  let t = Threads.steady ~threads:7 in
  let rng = Rng.create 1 in
  for hour = 0 to 30 do
    check_int "constant" 7 (Threads.count t rng ~now:(float_of_int hour *. Units.hour))
  done

let test_threads_bounds () =
  let t = Threads.diurnal ~base:16.0 ~max_threads:32 () in
  let rng = Rng.create 2 in
  for i = 0 to 2000 do
    let n = Threads.count t rng ~now:(float_of_int i *. Units.minute) in
    if n < 1 || n > 32 then Alcotest.failf "thread count %d out of bounds" n
  done

let test_threads_diurnal_swing () =
  let t =
    Threads.diurnal ~amplitude:0.5 ~noise:0.0 ~spike_probability:0.0
      ~period_ns:(24.0 *. Units.hour) ~base:20.0 ~max_threads:64 ()
  in
  let rng = Rng.create 3 in
  (* sin peaks a quarter period in, bottoms at three quarters. *)
  let peak = Threads.count t rng ~now:(6.0 *. Units.hour) in
  let trough = Threads.count t rng ~now:(18.0 *. Units.hour) in
  check_int "peak = base * 1.5" 30 peak;
  check_int "trough = base * 0.5" 10 trough

let test_threads_fluctuate () =
  let t = Threads.diurnal ~base:20.0 ~max_threads:48 () in
  let rng = Rng.create 4 in
  let counts =
    List.init 200 (fun i -> Threads.count t rng ~now:(float_of_int i *. Units.sec))
  in
  check_bool "not constant" true (List.length (List.sort_uniq compare counts) > 3)

(* {1 Profile} *)

let test_profile_sample_size_positive =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"profile_sizes_positive" ~count:100 QCheck.small_int
       (fun seed ->
         let rng = Rng.create (seed + 1) in
         List.for_all
           (fun p ->
             let ok = ref true in
             for _ = 1 to 50 do
               if Profile.sample_size p rng < 1 then ok := false
             done;
             !ok)
           Apps.all))

let test_profile_lifetime_positive () =
  let rng = Rng.create 5 in
  List.iter
    (fun p ->
      for _ = 1 to 200 do
        let size = Profile.sample_size p rng in
        let l = Profile.sample_lifetime p rng ~size in
        if l < 0.0 then Alcotest.failf "%s: negative lifetime" p.Profile.name
      done)
    Apps.all

let test_profile_lifetime_table_band_selection () =
  let p = Apps.monarch in
  let d_small = Profile.lifetime_dist p ~size:100 in
  let d_large = Profile.lifetime_dist p ~size:(10 * Units.mib) in
  let rng = Rng.create 6 in
  let mean d = Dist.mean_estimate d rng ~n:20_000 in
  check_bool "large objects live longer on average" true (mean d_large > mean d_small)

let test_fleet_size_dist_anchors () =
  (* Fig. 7 anchors: the count CDF and byte split of the fleet mixture. *)
  let rng = Rng.create 7 in
  let n = 300_000 in
  let below_1k = ref 0 in
  let bytes_total = ref 0.0 and bytes_below_1k = ref 0.0 in
  let bytes_above_8k = ref 0.0 and bytes_above_256k = ref 0.0 in
  for _ = 1 to n do
    let s = Dist.sample Profile.fleet_size_dist rng in
    if s <= 1024.0 then begin
      incr below_1k;
      bytes_below_1k := !bytes_below_1k +. s
    end;
    if s > 8192.0 then bytes_above_8k := !bytes_above_8k +. s;
    if s > 262144.0 then bytes_above_256k := !bytes_above_256k +. s;
    bytes_total := !bytes_total +. s
  done;
  check_close "98% of objects <= 1 KiB" 0.01 0.98 (float_of_int !below_1k /. float_of_int n);
  check_close "~28% of bytes <= 1 KiB" 0.12 0.28 (!bytes_below_1k /. !bytes_total);
  check_close "~50% of bytes > 8 KiB" 0.15 0.50 (!bytes_above_8k /. !bytes_total);
  check_close "~22% of bytes > 256 KiB" 0.15 0.22 (!bytes_above_256k /. !bytes_total)

let test_fleet_lifetime_small_fast () =
  (* Fig. 8 anchor: 46% of sub-KiB objects die within 1 ms. *)
  let rng = Rng.create 8 in
  let d = List.assoc Units.kib Profile.fleet_lifetime_table in
  let n = 100_000 in
  let fast = ref 0 in
  for _ = 1 to n do
    if Dist.sample d rng < Units.ms then incr fast
  done;
  check_close "46% under 1 ms" 0.02 0.46 (float_of_int !fast /. float_of_int n)

let test_scale_lifetimes () =
  let rng = Rng.create 9 in
  let table = [ (1024, Dist.constant 100.0) ] in
  let scaled = Profile.scale_lifetimes 2.5 table in
  let d = List.assoc 1024 scaled in
  check_close "scaled" 1e-9 250.0 (Dist.sample d rng)

let test_size_drift_changes_sizes () =
  let p = { Apps.monarch with Profile.size_drift_amplitude = 0.5 } in
  let mean_at now =
    let rng = Rng.create 10 in
    let acc = ref 0.0 in
    for _ = 1 to 20_000 do
      acc := !acc +. float_of_int (Profile.sample_size ~now p rng)
    done;
    !acc /. 20_000.0
  in
  let quarter = p.Profile.size_drift_period_ns /. 4.0 in
  check_bool "drift shifts the mean" true (mean_at quarter > 1.2 *. mean_at (3.0 *. quarter))

let test_apps_by_name () =
  check_bool "monarch resolves" true (Apps.by_name "monarch" == Apps.monarch);
  Alcotest.check_raises "unknown raises" Not_found (fun () ->
      ignore (Apps.by_name "no-such-app"))

let test_apps_lists () =
  check_int "five production workloads" 5 (List.length Apps.top5);
  check_int "four benchmarks" 4 (List.length Apps.benchmarks);
  check_bool "redis single threaded" true
    (Apps.redis.Profile.threads.Threads.max_threads = 1);
  check_bool "spec has startup burst" true (Apps.spec2006.Profile.startup_burst_allocs > 0)

let test_fleet_binary_variants () =
  let b0 = Apps.fleet_binary ~rank:5 and b1 = Apps.fleet_binary ~rank:40 in
  check_bool "distinct names" true (b0.Profile.name <> b1.Profile.name);
  check_bool "popularity decays" true
    (b1.Profile.requests_per_thread_per_sec < b0.Profile.requests_per_thread_per_sec)

(* {1 Driver} *)

let make_driver ?(profile = Apps.monarch) ?(seed = 3) () =
  let clock = Clock.create () in
  let topology = Wsc_hw.Topology.default in
  let sched = Wsc_os.Sched.slice topology ~first_cpu:0 ~cpus:24 in
  let backend = Backend.create ~topology ~clock () in
  let driver = Driver.create ~seed ~profile ~sched ~backend ~clock () in
  (clock, backend, driver)

let test_driver_allocates () =
  let _, backend, driver = make_driver () in
  Driver.run driver ~duration_ns:(2.0 *. Units.sec) ~epoch_ns:Units.ms;
  check_bool "allocations happened" true (Driver.allocations driver > 1000);
  check_bool "requests counted" true (Driver.requests_completed driver > 0.0);
  let tel = Backend.telemetry backend in
  check_int "driver and allocator agree" (Driver.allocations driver)
    (Telemetry.alloc_count tel)

let test_driver_leak_free_after_drain () =
  let _, backend, driver = make_driver ~profile:Apps.f1_query () in
  Driver.run driver ~duration_ns:(2.0 *. Units.sec) ~epoch_ns:Units.ms;
  Driver.drain driver;
  let stats = Backend.heap_stats backend in
  check_int "no live bytes after drain" 0 stats.Malloc.live_requested_bytes;
  check_int "alloc count = free count" 0
    (Telemetry.alloc_count (Backend.telemetry backend)
    - Telemetry.free_count (Backend.telemetry backend))

let test_driver_deterministic () =
  let run () =
    let _, backend, driver = make_driver ~seed:77 () in
    Driver.run driver ~duration_ns:(1.5 *. Units.sec) ~epoch_ns:Units.ms;
    ( Driver.allocations driver,
      (Backend.heap_stats backend).Malloc.live_requested_bytes )
  in
  let a1, l1 = run () and a2, l2 = run () in
  check_int "same allocations" a1 a2;
  check_int "same live bytes" l1 l2

let test_driver_seed_matters () =
  let run seed =
    let _, _, driver = make_driver ~seed () in
    Driver.run driver ~duration_ns:(1.0 *. Units.sec) ~epoch_ns:Units.ms;
    Driver.allocations driver
  in
  check_bool "different seeds diverge" true (run 1 <> run 2)

let test_driver_thread_series () =
  let _, _, driver = make_driver () in
  Driver.run driver ~duration_ns:(3.0 *. Units.sec) ~epoch_ns:Units.ms;
  let series = Driver.thread_series driver in
  check_bool "series recorded" true (List.length series >= 3);
  let times = List.map fst series in
  check_bool "ascending" true (times = List.sort compare times)

let test_driver_startup_burst () =
  let _, backend, driver = make_driver ~profile:Apps.spec2006 () in
  Driver.run driver ~duration_ns:(0.1 *. Units.sec) ~epoch_ns:Units.ms;
  check_bool "burst allocated immediately" true
    (Telemetry.alloc_count (Backend.telemetry backend)
    >= Apps.spec2006.Profile.startup_burst_allocs)

let test_driver_reset_measurements () =
  let _, _, driver = make_driver () in
  Driver.run driver ~duration_ns:(1.0 *. Units.sec) ~epoch_ns:Units.ms;
  check_bool "requests before reset" true (Driver.requests_completed driver > 0.0);
  Driver.reset_measurements driver;
  check_close "requests reset" 1e-9 0.0 (Driver.requests_completed driver);
  check_bool "malloc ns reset" true (Driver.measured_malloc_ns driver < 1.0);
  Driver.run driver ~duration_ns:(0.5 *. Units.sec) ~epoch_ns:Units.ms;
  check_bool "accumulates again" true (Driver.measured_malloc_ns driver > 0.0)

let test_driver_rss_tracking () =
  let _, _, driver = make_driver () in
  Driver.run driver ~duration_ns:(2.0 *. Units.sec) ~epoch_ns:Units.ms;
  check_bool "avg rss positive" true (Driver.avg_rss_bytes driver > 0.0);
  check_bool "peak >= avg" true
    (float_of_int (Driver.peak_rss_bytes driver) >= Driver.avg_rss_bytes driver)

let test_driver_lifetime_telemetry () =
  let _, backend, driver = make_driver () in
  Driver.run driver ~duration_ns:(2.0 *. Units.sec) ~epoch_ns:Units.ms;
  let bins = Telemetry.lifetime_bins (Backend.telemetry backend) in
  check_bool "lifetime samples recorded" true (bins <> [])

let suite =
  [
    ( "threads",
      [
        Alcotest.test_case "steady" `Quick test_threads_steady;
        Alcotest.test_case "bounds" `Quick test_threads_bounds;
        Alcotest.test_case "diurnal swing" `Quick test_threads_diurnal_swing;
        Alcotest.test_case "fluctuates" `Quick test_threads_fluctuate;
      ] );
    ( "profile",
      [
        test_profile_sample_size_positive;
        Alcotest.test_case "lifetimes positive" `Quick test_profile_lifetime_positive;
        Alcotest.test_case "lifetime bands" `Slow test_profile_lifetime_table_band_selection;
        Alcotest.test_case "fig7 anchors" `Slow test_fleet_size_dist_anchors;
        Alcotest.test_case "fig8 small fast" `Slow test_fleet_lifetime_small_fast;
        Alcotest.test_case "scale lifetimes" `Quick test_scale_lifetimes;
        Alcotest.test_case "size drift" `Slow test_size_drift_changes_sizes;
        Alcotest.test_case "by_name" `Quick test_apps_by_name;
        Alcotest.test_case "app lists" `Quick test_apps_lists;
        Alcotest.test_case "fleet binary variants" `Quick test_fleet_binary_variants;
      ] );
    ( "driver",
      [
        Alcotest.test_case "allocates" `Quick test_driver_allocates;
        Alcotest.test_case "leak-free after drain" `Quick test_driver_leak_free_after_drain;
        Alcotest.test_case "deterministic" `Quick test_driver_deterministic;
        Alcotest.test_case "seed matters" `Quick test_driver_seed_matters;
        Alcotest.test_case "thread series" `Quick test_driver_thread_series;
        Alcotest.test_case "startup burst" `Quick test_driver_startup_burst;
        Alcotest.test_case "reset measurements" `Quick test_driver_reset_measurements;
        Alcotest.test_case "rss tracking" `Quick test_driver_rss_tracking;
        Alcotest.test_case "lifetime telemetry" `Quick test_driver_lifetime_telemetry;
      ] );
  ]
