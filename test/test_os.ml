(* Tests for wsc_os: virtual memory with THP, vCPU ids, and scheduling. *)

open Wsc_os
open Wsc_substrate

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let hugepage = Units.hugepage_size
let page = Units.tcmalloc_page_size

(* {1 Vm} *)

let test_vm_mmap_alignment () =
  let vm = Vm.create () in
  let a = Vm.mmap vm ~hugepages:3 in
  check_int "hugepage aligned" 0 (a mod hugepage);
  let b = Vm.mmap vm ~hugepages:1 in
  check_bool "non-overlapping" true (b >= a + (3 * hugepage))

let test_vm_mapped_accounting () =
  let vm = Vm.create () in
  let a = Vm.mmap vm ~hugepages:4 in
  check_int "mapped" (4 * hugepage) (Vm.mapped_bytes vm);
  check_int "resident = mapped" (4 * hugepage) (Vm.resident_bytes vm);
  Vm.munmap vm a ~hugepages:4;
  check_int "unmapped" 0 (Vm.mapped_bytes vm)

let test_vm_partial_munmap () =
  let vm = Vm.create () in
  let a = Vm.mmap vm ~hugepages:4 in
  Vm.munmap vm (a + (2 * hugepage)) ~hugepages:2;
  check_int "half remains" (2 * hugepage) (Vm.mapped_bytes vm);
  check_bool "front still mapped" true (Vm.is_mapped vm a);
  check_bool "back unmapped" false (Vm.is_mapped vm (a + (3 * hugepage)))

let test_vm_thp_lifecycle () =
  let vm = Vm.create () in
  let a = Vm.mmap vm ~hugepages:1 in
  check_bool "fresh hugepage is intact" true (Vm.is_huge_backed vm a);
  check_int "all bytes huge backed" hugepage (Vm.huge_backed_bytes vm);
  Vm.subrelease vm a ~pages:10;
  check_bool "subrelease breaks THP" false (Vm.is_huge_backed vm a);
  check_int "no huge backed bytes" 0 (Vm.huge_backed_bytes vm);
  check_int "resident shrinks" (hugepage - (10 * page)) (Vm.resident_bytes vm)

let test_vm_reclaim () =
  let vm = Vm.create () in
  let a = Vm.mmap vm ~hugepages:1 in
  Vm.subrelease vm a ~pages:20;
  Vm.reclaim vm a ~pages:5;
  check_int "reclaimed pages resident again" (hugepage - (15 * page)) (Vm.resident_bytes vm);
  check_bool "still broken after reclaim" false (Vm.is_huge_backed vm a)

let test_vm_counters () =
  let vm = Vm.create () in
  let a = Vm.mmap vm ~hugepages:1 in
  let b = Vm.mmap vm ~hugepages:2 in
  Vm.subrelease vm a ~pages:1;
  Vm.munmap vm b ~hugepages:2;
  check_int "mmaps" 2 (Vm.mmap_calls vm);
  check_int "munmaps" 1 (Vm.munmap_calls vm);
  check_int "subreleases" 1 (Vm.subrelease_calls vm)

let test_vm_errors () =
  let vm = Vm.create () in
  Alcotest.check_raises "mmap zero" (Invalid_argument "Vm.mmap: hugepages must be positive")
    (fun () -> ignore (Vm.mmap vm ~hugepages:0));
  let a = Vm.mmap vm ~hugepages:1 in
  Alcotest.check_raises "misaligned munmap"
    (Invalid_argument "Vm.munmap: misaligned address") (fun () ->
      Vm.munmap vm (a + 1) ~hugepages:1);
  Alcotest.check_raises "double munmap" (Invalid_argument "Vm.munmap: range not mapped")
    (fun () ->
      Vm.munmap vm a ~hugepages:1;
      Vm.munmap vm a ~hugepages:1)

let test_vm_no_overlap_property =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"vm_mmap_never_overlaps" ~count:50
       QCheck.(list_of_size (Gen.int_range 1 20) (int_range 1 8))
       (fun sizes ->
         let vm = Vm.create () in
         let regions = List.map (fun n -> (Vm.mmap vm ~hugepages:n, n)) sizes in
         let sorted = List.sort compare regions in
         let rec disjoint = function
           | (a1, n1) :: ((a2, _) :: _ as rest) ->
             a1 + (n1 * hugepage) <= a2 && disjoint rest
           | [ _ ] | [] -> true
         in
         disjoint sorted))

(* {1 Vcpu} *)

let test_vcpu_dense_assignment () =
  let v = Vcpu.create () in
  check_int "first is 0" 0 (Vcpu.acquire v ~phys_cpu:77);
  check_int "second is 1" 1 (Vcpu.acquire v ~phys_cpu:3);
  check_int "idempotent" 0 (Vcpu.acquire v ~phys_cpu:77);
  check_int "active" 2 (Vcpu.active_count v)

let test_vcpu_reuse_lowest () =
  let v = Vcpu.create () in
  ignore (Vcpu.acquire v ~phys_cpu:10);
  ignore (Vcpu.acquire v ~phys_cpu:11);
  ignore (Vcpu.acquire v ~phys_cpu:12);
  Vcpu.release v ~phys_cpu:11;
  Vcpu.release v ~phys_cpu:10;
  (* Freed ids 1 then 0; the lowest comes back first. *)
  check_int "lowest free id reused" 0 (Vcpu.acquire v ~phys_cpu:99);
  check_int "next free id" 1 (Vcpu.acquire v ~phys_cpu:98)

let test_vcpu_high_water () =
  let v = Vcpu.create () in
  for cpu = 0 to 9 do
    ignore (Vcpu.acquire v ~phys_cpu:cpu)
  done;
  for cpu = 0 to 9 do
    Vcpu.release v ~phys_cpu:cpu
  done;
  ignore (Vcpu.acquire v ~phys_cpu:50);
  check_int "high water persists" 10 (Vcpu.high_water_mark v);
  check_int "only one active" 1 (Vcpu.active_count v)

let test_vcpu_release_idempotent () =
  let v = Vcpu.create () in
  ignore (Vcpu.acquire v ~phys_cpu:1);
  Vcpu.release v ~phys_cpu:1;
  Vcpu.release v ~phys_cpu:1;
  check_int "no double free of ids" 0 (Vcpu.active_count v);
  check_int "id 0 reusable once" 0 (Vcpu.acquire v ~phys_cpu:2)

let test_vcpu_lookup () =
  let v = Vcpu.create () in
  Alcotest.(check (option int)) "missing" None (Vcpu.lookup v ~phys_cpu:4);
  ignore (Vcpu.acquire v ~phys_cpu:4);
  Alcotest.(check (option int)) "present" (Some 0) (Vcpu.lookup v ~phys_cpu:4)

let test_vcpu_density_property =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"vcpu_ids_stay_dense" ~count:100
       QCheck.(list (pair bool (int_range 0 31)))
       (fun ops ->
         let v = Vcpu.create () in
         List.iter
           (fun (acquire, cpu) ->
             if acquire then ignore (Vcpu.acquire v ~phys_cpu:cpu)
             else Vcpu.release v ~phys_cpu:cpu)
           ops;
         (* After any op sequence, re-acquiring for all 32 cpus must produce
            ids 0..31 exactly (density). *)
         let ids = List.init 32 (fun cpu -> Vcpu.acquire v ~phys_cpu:cpu) in
         List.sort compare ids = List.init 32 Fun.id))

(* {1 Sched} *)

let test_sched_whole_machine () =
  let topo = Wsc_hw.Topology.uniprocessor in
  let s = Sched.whole_machine topo in
  check_int "quota covers machine" (Wsc_hw.Topology.num_cpus topo) (Sched.quota_size s)

let test_sched_round_robin () =
  let topo = Wsc_hw.Topology.uniprocessor in
  let s = Sched.create topo ~quota:[ 2; 3 ] in
  check_int "thread 0" 2 (Sched.cpu_of_thread s ~thread:0);
  check_int "thread 1" 3 (Sched.cpu_of_thread s ~thread:1);
  check_int "thread 2 wraps" 2 (Sched.cpu_of_thread s ~thread:2)

let test_sched_slice_wraps () =
  let topo = Wsc_hw.Topology.uniprocessor in
  let s = Sched.slice topo ~first_cpu:3 ~cpus:2 in
  check_int "wrapped" 0 (Sched.cpu_of_thread s ~thread:1)

let test_sched_domains_used () =
  let topo = Wsc_hw.Topology.default in
  let s = Sched.whole_machine topo in
  (* 18 cpus per domain: 10 threads stay in one domain, 30 span two. *)
  check_int "few threads one domain" 1 (List.length (Sched.domains_used s ~active_threads:10));
  check_int "more threads two domains" 2
    (List.length (Sched.domains_used s ~active_threads:30))

let test_sched_errors () =
  let topo = Wsc_hw.Topology.uniprocessor in
  Alcotest.check_raises "empty quota" (Invalid_argument "Sched.create: empty quota")
    (fun () -> ignore (Sched.create topo ~quota:[]));
  Alcotest.check_raises "out of range" (Invalid_argument "Sched.create: CPU out of range")
    (fun () -> ignore (Sched.create topo ~quota:[ 1000 ]))

let suite =
  [
    ( "vm",
      [
        Alcotest.test_case "mmap alignment" `Quick test_vm_mmap_alignment;
        Alcotest.test_case "mapped accounting" `Quick test_vm_mapped_accounting;
        Alcotest.test_case "partial munmap" `Quick test_vm_partial_munmap;
        Alcotest.test_case "thp lifecycle" `Quick test_vm_thp_lifecycle;
        Alcotest.test_case "reclaim" `Quick test_vm_reclaim;
        Alcotest.test_case "counters" `Quick test_vm_counters;
        Alcotest.test_case "errors" `Quick test_vm_errors;
        test_vm_no_overlap_property;
      ] );
    ( "vcpu",
      [
        Alcotest.test_case "dense assignment" `Quick test_vcpu_dense_assignment;
        Alcotest.test_case "reuse lowest" `Quick test_vcpu_reuse_lowest;
        Alcotest.test_case "high water" `Quick test_vcpu_high_water;
        Alcotest.test_case "release idempotent" `Quick test_vcpu_release_idempotent;
        Alcotest.test_case "lookup" `Quick test_vcpu_lookup;
        test_vcpu_density_property;
      ] );
    ( "sched",
      [
        Alcotest.test_case "whole machine" `Quick test_sched_whole_machine;
        Alcotest.test_case "round robin" `Quick test_sched_round_robin;
        Alcotest.test_case "slice wraps" `Quick test_sched_slice_wraps;
        Alcotest.test_case "domains used" `Quick test_sched_domains_used;
        Alcotest.test_case "errors" `Quick test_sched_errors;
      ] );
  ]
