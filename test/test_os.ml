(* Tests for wsc_os: virtual memory with THP, vCPU ids, and scheduling. *)

open Wsc_os
open Wsc_substrate

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let hugepage = Units.hugepage_size
let page = Units.tcmalloc_page_size

(* {1 Vm} *)

let test_vm_mmap_alignment () =
  let vm = Vm.create () in
  let a = Vm.mmap vm ~hugepages:3 in
  check_int "hugepage aligned" 0 (a mod hugepage);
  let b = Vm.mmap vm ~hugepages:1 in
  check_bool "non-overlapping" true (b >= a + (3 * hugepage))

let test_vm_mapped_accounting () =
  let vm = Vm.create () in
  let a = Vm.mmap vm ~hugepages:4 in
  check_int "mapped" (4 * hugepage) (Vm.mapped_bytes vm);
  check_int "resident = mapped" (4 * hugepage) (Vm.resident_bytes vm);
  Vm.munmap vm a ~hugepages:4;
  check_int "unmapped" 0 (Vm.mapped_bytes vm)

let test_vm_partial_munmap () =
  let vm = Vm.create () in
  let a = Vm.mmap vm ~hugepages:4 in
  Vm.munmap vm (a + (2 * hugepage)) ~hugepages:2;
  check_int "half remains" (2 * hugepage) (Vm.mapped_bytes vm);
  check_bool "front still mapped" true (Vm.is_mapped vm a);
  check_bool "back unmapped" false (Vm.is_mapped vm (a + (3 * hugepage)))

let test_vm_thp_lifecycle () =
  let vm = Vm.create () in
  let a = Vm.mmap vm ~hugepages:1 in
  check_bool "fresh hugepage is intact" true (Vm.is_huge_backed vm a);
  check_int "all bytes huge backed" hugepage (Vm.huge_backed_bytes vm);
  Vm.subrelease vm a ~pages:10;
  check_bool "subrelease breaks THP" false (Vm.is_huge_backed vm a);
  check_int "no huge backed bytes" 0 (Vm.huge_backed_bytes vm);
  check_int "resident shrinks" (hugepage - (10 * page)) (Vm.resident_bytes vm)

let test_vm_reclaim () =
  let vm = Vm.create () in
  let a = Vm.mmap vm ~hugepages:1 in
  Vm.subrelease vm a ~pages:20;
  Vm.reclaim vm a ~pages:5;
  check_int "reclaimed pages resident again" (hugepage - (15 * page)) (Vm.resident_bytes vm);
  check_bool "still broken after reclaim" false (Vm.is_huge_backed vm a)

let test_vm_counters () =
  let vm = Vm.create () in
  let a = Vm.mmap vm ~hugepages:1 in
  let b = Vm.mmap vm ~hugepages:2 in
  Vm.subrelease vm a ~pages:1;
  Vm.munmap vm b ~hugepages:2;
  check_int "mmaps" 2 (Vm.mmap_calls vm);
  check_int "munmaps" 1 (Vm.munmap_calls vm);
  check_int "subreleases" 1 (Vm.subrelease_calls vm)

let test_vm_errors () =
  let vm = Vm.create () in
  Alcotest.check_raises "mmap zero" (Invalid_argument "Vm.mmap: hugepages must be positive")
    (fun () -> ignore (Vm.mmap vm ~hugepages:0));
  let a = Vm.mmap vm ~hugepages:1 in
  Alcotest.check_raises "misaligned munmap"
    (Invalid_argument "Vm.munmap: misaligned address") (fun () ->
      Vm.munmap vm (a + 1) ~hugepages:1);
  Alcotest.check_raises "double munmap" (Invalid_argument "Vm.munmap: range not mapped")
    (fun () ->
      Vm.munmap vm a ~hugepages:1;
      Vm.munmap vm a ~hugepages:1)

let test_vm_subrelease_saturates () =
  let vm = Vm.create () in
  let a = Vm.mmap vm ~hugepages:1 in
  (* Subreleasing more pages than a hugepage holds saturates; resident
     never goes negative. *)
  Vm.subrelease vm a ~pages:10_000;
  check_int "saturates at whole hugepage" 0 (Vm.resident_bytes vm);
  Vm.subrelease vm a ~pages:5;
  check_int "still zero after repeat" 0 (Vm.resident_bytes vm);
  (* Unmapping must unwind the aggregate subreleased count too. *)
  Vm.munmap vm a ~hugepages:1;
  check_int "nothing mapped" 0 (Vm.mapped_bytes vm);
  check_int "resident zero after unmap" 0 (Vm.resident_bytes vm)

let test_vm_reclaim_never_subreleased () =
  let vm = Vm.create () in
  let a = Vm.mmap vm ~hugepages:1 in
  (* Reclaiming pages that were never subreleased clamps at zero. *)
  Vm.reclaim vm a ~pages:7;
  check_int "resident unchanged" hugepage (Vm.resident_bytes vm);
  check_int "reclaim counted" 1 (Vm.reclaim_calls vm);
  check_bool "reclaim alone never breaks THP" true (Vm.is_huge_backed vm a)

let test_vm_subrelease_reclaim_interleave () =
  let vm = Vm.create () in
  let a = Vm.mmap vm ~hugepages:2 in
  let b = a + hugepage in
  Vm.subrelease vm a ~pages:50;
  Vm.subrelease vm b ~pages:100;
  (* Over-reclaim clamps to the 50 pages actually out on this hugepage. *)
  Vm.reclaim vm a ~pages:60;
  check_int "only b's pages missing" ((2 * hugepage) - (100 * page)) (Vm.resident_bytes vm);
  Vm.subrelease vm a ~pages:300;
  check_int "a fully subreleased" (hugepage - (100 * page)) (Vm.resident_bytes vm);
  Vm.reclaim vm b ~pages:100;
  Vm.reclaim vm a ~pages:(hugepage / page);
  check_int "fully resident again" (2 * hugepage) (Vm.resident_bytes vm)

let test_vm_limit_edges () =
  let vm = Vm.create () in
  Alcotest.check_raises "zero soft limit"
    (Invalid_argument "Vm.set_soft_limit: limit must be positive") (fun () ->
      Vm.set_soft_limit vm (Some 0));
  Alcotest.check_raises "zero hard limit"
    (Invalid_argument "Vm.set_hard_limit: limit must be positive") (fun () ->
      Vm.set_hard_limit vm (Some 0));
  Alcotest.check_raises "nonpositive subrelease"
    (Invalid_argument "Vm.subrelease: pages must be positive") (fun () ->
      let a = Vm.mmap vm ~hugepages:1 in
      Vm.subrelease vm a ~pages:0);
  Alcotest.check_raises "nonpositive reclaim"
    (Invalid_argument "Vm.reclaim: pages must be positive") (fun () ->
      Vm.reclaim vm 0 ~pages:0)

let test_vm_hard_limit_mmap () =
  let vm = Vm.create () in
  Vm.set_hard_limit vm (Some (2 * hugepage));
  let a = Vm.mmap vm ~hugepages:2 in
  check_bool "within limit succeeds" true (Vm.is_mapped vm a);
  check_bool "limit failure raised" true
    (try
       ignore (Vm.mmap vm ~hugepages:1);
       false
     with Vm.Mmap_failed Vm.Hard_limit_exceeded -> true);
  check_int "failure counted" 1 (Vm.mmap_failures vm);
  check_int "attributed to the limit" 1 (Vm.limit_mmap_failures vm);
  check_int "failed mmap not counted as a call" 1 (Vm.mmap_calls vm);
  (* Freeing memory restores headroom. *)
  Vm.munmap vm a ~hugepages:2;
  ignore (Vm.mmap vm ~hugepages:1);
  check_int "succeeds after release" 2 (Vm.mmap_calls vm)

let test_vm_fault_hook () =
  let vm = Vm.create () in
  let remaining = ref 2 in
  Vm.set_fault_hook vm
    (Some
       (fun ~bytes:_ ->
         if !remaining > 0 then begin
           decr remaining;
           true
         end
         else false));
  let attempt () = try ignore (Vm.mmap vm ~hugepages:1); true with Vm.Mmap_failed Vm.Transient_fault -> false in
  check_bool "first injected" false (attempt ());
  check_bool "second injected" false (attempt ());
  check_bool "third passes" true (attempt ());
  check_int "two transient failures" 2 (Vm.transient_mmap_failures vm);
  check_int "no limit failures" 0 (Vm.limit_mmap_failures vm)

let test_vm_soft_limit_excess () =
  let vm = Vm.create () in
  check_int "no limit, no excess" 0 (Vm.soft_limit_excess vm);
  Vm.set_soft_limit vm (Some hugepage);
  ignore (Vm.mmap vm ~hugepages:1);
  check_int "at the limit exactly" 0 (Vm.soft_limit_excess vm);
  Vm.set_pressure_hook vm (Some (fun () -> 3 * page));
  check_int "external pressure counts" (3 * page) (Vm.soft_limit_excess vm);
  Vm.set_pressure_hook vm (Some (fun () -> -100));
  check_int "negative pressure clamped" 0 (Vm.soft_limit_excess vm)

(* {1 Fault injection} *)

let fault_config rate =
  {
    Fault.seed = 42;
    mmap_failure_rate = rate;
    mmap_failure_burst = 1;
    pressure_period_ns = 2.0 *. Units.sec;
    pressure_duration_ns = 0.5 *. Units.sec;
    pressure_bytes = 64 * 1024 * 1024;
    cpu_churn_period_ns = Units.sec;
  }

let test_fault_validation () =
  let clock = Clock.create () in
  Alcotest.check_raises "rate out of range"
    (Invalid_argument "Fault.create: mmap_failure_rate must be in [0, 1)") (fun () ->
      ignore (Fault.create ~clock (fault_config 1.5)));
  Alcotest.check_raises "burst must be positive"
    (Invalid_argument "Fault.create: mmap_failure_burst must be positive") (fun () ->
      ignore (Fault.create ~clock { (fault_config 0.1) with Fault.mmap_failure_burst = 0 }))

let test_fault_transient_determinism () =
  let draw ~index n =
    let clock = Clock.create () in
    let f = Fault.create ~index ~clock (fault_config 0.3) in
    List.init n (fun _ -> Fault.transient_mmap_failure f)
  in
  check_bool "same index, same stream" true (draw ~index:0 200 = draw ~index:0 200);
  check_bool "different index, different stream" true (draw ~index:0 200 <> draw ~index:1 200)

let test_fault_pressure_machine_wide () =
  let clock = Clock.create () in
  let f0 = Fault.create ~index:0 ~clock (fault_config 0.0) in
  let f1 = Fault.create ~index:7 ~clock (fault_config 0.0) in
  (* Pressure is a pure function of (seed, time): every co-located process
     sees the identical spike train regardless of its job index. *)
  let times = List.init 100 (fun i -> float_of_int i *. 0.11 *. Units.sec) in
  List.iter
    (fun now ->
      check_int "machine-wide pressure" (Fault.pressure_bytes_at f0 ~now)
        (Fault.pressure_bytes_at f1 ~now))
    times;
  (* Some window must actually spike, and spikes are bounded. *)
  let peaks = List.map (fun now -> Fault.pressure_bytes_at f0 ~now) times in
  check_bool "spikes occur" true (List.exists (fun b -> b > 0) peaks);
  let nominal = (fault_config 0.0).Fault.pressure_bytes in
  check_bool "spikes bounded" true
    (List.for_all (fun b -> b >= 0 && b < 2 * nominal) peaks)

let test_fault_churn_schedule () =
  let clock = Clock.create () in
  let f = Fault.create ~clock (fault_config 0.0) in
  check_bool "not due at t=0" false (Fault.churn_due f ~now:(Clock.now clock));
  Clock.advance clock (1.5 *. Units.sec);
  check_bool "due after a period" true (Fault.churn_due f ~now:(Clock.now clock));
  check_bool "consumed" false (Fault.churn_due f ~now:(Clock.now clock));
  (* Sleeping many periods yields one burst, not a backlog. *)
  Clock.advance clock (10.0 *. Units.sec);
  check_bool "due again" true (Fault.churn_due f ~now:(Clock.now clock));
  check_bool "no backlog" false (Fault.churn_due f ~now:(Clock.now clock))

let test_fault_install () =
  let clock = Clock.create () in
  let f = Fault.create ~clock { (fault_config 1.0 ) with Fault.mmap_failure_rate = 0.999 } in
  let vm = Vm.create () in
  Fault.install f ~vm;
  let failures = ref 0 in
  for _ = 1 to 20 do
    try ignore (Vm.mmap vm ~hugepages:1)
    with Vm.Mmap_failed Vm.Transient_fault -> incr failures
  done;
  check_bool "hook wired" true (!failures > 0);
  check_int "vm and stream agree" !failures (Fault.injected_failures f)

let test_vm_no_overlap_property =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"vm_mmap_never_overlaps" ~count:50
       QCheck.(list_of_size (Gen.int_range 1 20) (int_range 1 8))
       (fun sizes ->
         let vm = Vm.create () in
         let regions = List.map (fun n -> (Vm.mmap vm ~hugepages:n, n)) sizes in
         let sorted = List.sort compare regions in
         let rec disjoint = function
           | (a1, n1) :: ((a2, _) :: _ as rest) ->
             a1 + (n1 * hugepage) <= a2 && disjoint rest
           | [ _ ] | [] -> true
         in
         disjoint sorted))

(* {1 Vcpu} *)

let test_vcpu_dense_assignment () =
  let v = Vcpu.create () in
  check_int "first is 0" 0 (Vcpu.acquire v ~phys_cpu:77);
  check_int "second is 1" 1 (Vcpu.acquire v ~phys_cpu:3);
  check_int "idempotent" 0 (Vcpu.acquire v ~phys_cpu:77);
  check_int "active" 2 (Vcpu.active_count v)

let test_vcpu_reuse_lowest () =
  let v = Vcpu.create () in
  ignore (Vcpu.acquire v ~phys_cpu:10);
  ignore (Vcpu.acquire v ~phys_cpu:11);
  ignore (Vcpu.acquire v ~phys_cpu:12);
  Vcpu.release v ~phys_cpu:11;
  Vcpu.release v ~phys_cpu:10;
  (* Freed ids 1 then 0; the lowest comes back first. *)
  check_int "lowest free id reused" 0 (Vcpu.acquire v ~phys_cpu:99);
  check_int "next free id" 1 (Vcpu.acquire v ~phys_cpu:98)

let test_vcpu_high_water () =
  let v = Vcpu.create () in
  for cpu = 0 to 9 do
    ignore (Vcpu.acquire v ~phys_cpu:cpu)
  done;
  for cpu = 0 to 9 do
    Vcpu.release v ~phys_cpu:cpu
  done;
  ignore (Vcpu.acquire v ~phys_cpu:50);
  check_int "high water persists" 10 (Vcpu.high_water_mark v);
  check_int "only one active" 1 (Vcpu.active_count v)

let test_vcpu_release_idempotent () =
  let v = Vcpu.create () in
  ignore (Vcpu.acquire v ~phys_cpu:1);
  Vcpu.release v ~phys_cpu:1;
  Vcpu.release v ~phys_cpu:1;
  check_int "no double free of ids" 0 (Vcpu.active_count v);
  check_int "id 0 reusable once" 0 (Vcpu.acquire v ~phys_cpu:2)

let test_vcpu_lookup () =
  let v = Vcpu.create () in
  Alcotest.(check (option int)) "missing" None (Vcpu.lookup v ~phys_cpu:4);
  ignore (Vcpu.acquire v ~phys_cpu:4);
  Alcotest.(check (option int)) "present" (Some 0) (Vcpu.lookup v ~phys_cpu:4)

let test_vcpu_density_property =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"vcpu_ids_stay_dense" ~count:100
       QCheck.(list (pair bool (int_range 0 31)))
       (fun ops ->
         let v = Vcpu.create () in
         List.iter
           (fun (acquire, cpu) ->
             if acquire then ignore (Vcpu.acquire v ~phys_cpu:cpu)
             else Vcpu.release v ~phys_cpu:cpu)
           ops;
         (* After any op sequence, re-acquiring for all 32 cpus must produce
            ids 0..31 exactly (density). *)
         let ids = List.init 32 (fun cpu -> Vcpu.acquire v ~phys_cpu:cpu) in
         List.sort compare ids = List.init 32 Fun.id))

(* Model-based property: a reference map (phys cpu -> id) predicts every
   acquire.  Re-acquires are idempotent, fresh acquires take the lowest id
   not in use, [active_ids] mirrors the model after every op, and
   [high_water_mark] never decreases. *)
let test_vcpu_model_property =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"vcpu_model_lowest_free" ~count:200
       QCheck.(list (pair bool (int_range 0 15)))
       (fun ops ->
         let v = Vcpu.create () in
         let model = Hashtbl.create 16 in
         let hwm = ref 0 in
         List.for_all
           (fun (acquire, cpu) ->
             let step_ok =
               if acquire then begin
                 let expected =
                   match Hashtbl.find_opt model cpu with
                   | Some id -> id
                   | None ->
                     let used = Hashtbl.fold (fun _ id acc -> id :: acc) model [] in
                     let rec lowest i = if List.mem i used then lowest (i + 1) else i in
                     lowest 0
                 in
                 let id = Vcpu.acquire v ~phys_cpu:cpu in
                 Hashtbl.replace model cpu id;
                 id = expected && Vcpu.is_id_active v id
               end
               else begin
                 Hashtbl.remove model cpu;
                 Vcpu.release v ~phys_cpu:cpu;
                 true
               end
             in
             let model_ids =
               Hashtbl.fold (fun _ id acc -> id :: acc) model [] |> List.sort compare
             in
             let monotone = Vcpu.high_water_mark v >= !hwm in
             hwm := Vcpu.high_water_mark v;
             step_ok && monotone
             && Vcpu.active_ids v = model_ids
             && Vcpu.active_count v = Hashtbl.length model)
           ops))

(* {1 Sched} *)

let test_sched_whole_machine () =
  let topo = Wsc_hw.Topology.uniprocessor in
  let s = Sched.whole_machine topo in
  check_int "quota covers machine" (Wsc_hw.Topology.num_cpus topo) (Sched.quota_size s)

let test_sched_round_robin () =
  let topo = Wsc_hw.Topology.uniprocessor in
  let s = Sched.create topo ~quota:[ 2; 3 ] in
  check_int "thread 0" 2 (Sched.cpu_of_thread s ~thread:0);
  check_int "thread 1" 3 (Sched.cpu_of_thread s ~thread:1);
  check_int "thread 2 wraps" 2 (Sched.cpu_of_thread s ~thread:2)

let test_sched_slice_wraps () =
  let topo = Wsc_hw.Topology.uniprocessor in
  let s = Sched.slice topo ~first_cpu:3 ~cpus:2 in
  check_int "wrapped" 0 (Sched.cpu_of_thread s ~thread:1)

let test_sched_domains_used () =
  let topo = Wsc_hw.Topology.default in
  let s = Sched.whole_machine topo in
  (* 18 cpus per domain: 10 threads stay in one domain, 30 span two. *)
  check_int "few threads one domain" 1 (List.length (Sched.domains_used s ~active_threads:10));
  check_int "more threads two domains" 2
    (List.length (Sched.domains_used s ~active_threads:30))

let test_sched_errors () =
  let topo = Wsc_hw.Topology.uniprocessor in
  Alcotest.check_raises "empty quota" (Invalid_argument "Sched.create: empty quota")
    (fun () -> ignore (Sched.create topo ~quota:[]));
  Alcotest.check_raises "out of range" (Invalid_argument "Sched.create: CPU out of range")
    (fun () -> ignore (Sched.create topo ~quota:[ 1000 ]))

let suite =
  [
    ( "vm",
      [
        Alcotest.test_case "mmap alignment" `Quick test_vm_mmap_alignment;
        Alcotest.test_case "mapped accounting" `Quick test_vm_mapped_accounting;
        Alcotest.test_case "partial munmap" `Quick test_vm_partial_munmap;
        Alcotest.test_case "thp lifecycle" `Quick test_vm_thp_lifecycle;
        Alcotest.test_case "reclaim" `Quick test_vm_reclaim;
        Alcotest.test_case "counters" `Quick test_vm_counters;
        Alcotest.test_case "errors" `Quick test_vm_errors;
        Alcotest.test_case "subrelease saturates" `Quick test_vm_subrelease_saturates;
        Alcotest.test_case "reclaim never-subreleased" `Quick
          test_vm_reclaim_never_subreleased;
        Alcotest.test_case "subrelease/reclaim interleave" `Quick
          test_vm_subrelease_reclaim_interleave;
        Alcotest.test_case "limit edges" `Quick test_vm_limit_edges;
        Alcotest.test_case "hard limit mmap" `Quick test_vm_hard_limit_mmap;
        Alcotest.test_case "fault hook" `Quick test_vm_fault_hook;
        Alcotest.test_case "soft limit excess" `Quick test_vm_soft_limit_excess;
        test_vm_no_overlap_property;
      ] );
    ( "fault",
      [
        Alcotest.test_case "validation" `Quick test_fault_validation;
        Alcotest.test_case "transient determinism" `Quick test_fault_transient_determinism;
        Alcotest.test_case "pressure machine-wide" `Quick test_fault_pressure_machine_wide;
        Alcotest.test_case "churn schedule" `Quick test_fault_churn_schedule;
        Alcotest.test_case "install" `Quick test_fault_install;
      ] );
    ( "vcpu",
      [
        Alcotest.test_case "dense assignment" `Quick test_vcpu_dense_assignment;
        Alcotest.test_case "reuse lowest" `Quick test_vcpu_reuse_lowest;
        Alcotest.test_case "high water" `Quick test_vcpu_high_water;
        Alcotest.test_case "release idempotent" `Quick test_vcpu_release_idempotent;
        Alcotest.test_case "lookup" `Quick test_vcpu_lookup;
        test_vcpu_density_property;
        test_vcpu_model_property;
      ] );
    ( "sched",
      [
        Alcotest.test_case "whole machine" `Quick test_sched_whole_machine;
        Alcotest.test_case "round robin" `Quick test_sched_round_robin;
        Alcotest.test_case "slice wraps" `Quick test_sched_slice_wraps;
        Alcotest.test_case "domains used" `Quick test_sched_domains_used;
        Alcotest.test_case "errors" `Quick test_sched_errors;
      ] );
  ]
