(* Differential property tests for the event-loop rework: the calendar
   queue against the binary-heap reference, the payload-only drain against
   the keyed drain, the guide-table samplers against straight-line
   reference searches on the same RNG stream, the alias table's
   distribution, and the unboxed int table against a Hashtbl model. *)

open Wsc_substrate

let qcheck t = QCheck_alcotest.to_alcotest t
let check_int = Alcotest.(check int)

(* {1 Calendar vs Event_heap} *)

(* A schedule is a list of steps; keys come from a small pool of magnitudes
   (forcing equal-key collisions) plus a far-future sentinel, and drains
   advance a monotone [now].  Drain bounds and pushed keys are always
   >= the current drain point, matching the driver's usage and both
   modules' contracts. *)
type sched_step =
  | Push of int (* key selector *)
  | Drain of int (* advance selector *)

let sched_gen =
  QCheck.Gen.(
    list_size (int_range 20 300)
      (frequency
         [ (3, map (fun k -> Push k) (int_range 0 9)); (1, map (fun d -> Drain d) (int_range 0 3)) ]))

let sched_arb =
  QCheck.make sched_gen
    ~print:(fun steps ->
      String.concat ";"
        (List.map (function Push k -> Printf.sprintf "P%d" k | Drain d -> Printf.sprintf "D%d" d) steps))

(* Key pool: exact ties (same selector -> same float), sub-bucket spacings
   (< 1024 ns, landing in one calendar bucket), multi-level spacings, and
   the startup-burst sentinel. *)
let key_of_selector ~now = function
  | 0 | 1 -> now +. 1.0 (* frequent exact ties, same bucket as now *)
  | 2 -> now +. 100.0
  | 3 -> now +. 999.0 (* still level-0 bucket scale *)
  | 4 -> now +. 5_000.0
  | 5 -> now +. 300_000.0
  | 6 -> now +. 5.0e7
  | 7 -> now +. 3.0e9 (* deep wheel levels *)
  | 8 -> now
  | _ -> 1.0e18 (* far-future: startup-burst "lives forever" events *)

let advance_of_selector = function
  | 0 -> 0.0 (* drain at now: empty or equal-key-only drains *)
  | 1 -> 512.0
  | 2 -> 4096.0
  | _ -> 1.0e6

let run_schedule steps ~push ~drain =
  let now = ref 0.0 in
  let seq = ref 0 in
  List.iter
    (fun step ->
      match step with
      | Push k ->
        let key = key_of_selector ~now:!now k in
        push key !seq;
        incr seq
      | Drain d ->
        now := !now +. advance_of_selector d;
        drain !now)
    steps;
  (* Final full drain flushes the far-future sentinels too. *)
  drain infinity

(* The two queues agree on the delivered key sequence, and within each
   equal-key run deliver the same *set* of events; the calendar
   additionally delivers equal keys in push (FIFO) order, which the heap's
   unstable sift does not promise. *)
let calendar_matches_event_heap =
  QCheck.Test.make ~name:"calendar_matches_event_heap_pop_order" ~count:200 sched_arb
    (fun steps ->
      let cal = Calendar.create () in
      let heap = Event_heap.create () in
      let cal_out = ref [] and heap_out = ref [] in
      run_schedule steps
        ~push:(fun key seq ->
          Calendar.push cal key ~a:seq ~b:(seq * 7) ~c:(seq land 3))
        ~drain:(fun bound ->
          Calendar.drain_until cal bound (fun ~key ~a ~b ~c ->
              cal_out := (key, a, b, c) :: !cal_out));
      run_schedule steps
        ~push:(fun key seq -> Event_heap.push heap key ~a:seq ~b:(seq * 7) ~c:(seq land 3))
        ~drain:(fun bound ->
          Event_heap.drain_until heap bound (fun ~key ~a ~b ~c ->
              heap_out := (key, a, b, c) :: !heap_out));
      let cal_out = List.rev !cal_out and heap_out = List.rev !heap_out in
      (* Same key sequence... *)
      List.length cal_out = List.length heap_out
      && List.for_all2 (fun (k1, _, _, _) (k2, _, _, _) -> k1 = k2) cal_out heap_out
      && (* ...same events within each equal-key run... *)
      (let sort l = List.sort compare l in
       sort cal_out = sort heap_out)
      && (* ...and the calendar's ties are FIFO: the push sequence number in
            [a] must ascend within an equal-key run. *)
      (let rec fifo = function
         | (k1, a1, _, _) :: ((k2, a2, _, _) :: _ as rest) ->
           (k1 <> k2 || a1 < a2) && fifo rest
         | _ -> true
       in
       fifo cal_out))

(* [drain_payloads] is [drain_until] minus the key argument: identical
   payload sequence on an identical schedule. *)
let drain_payloads_matches_drain_until =
  QCheck.Test.make ~name:"calendar_drain_payloads_matches_drain_until" ~count:200 sched_arb
    (fun steps ->
      let c1 = Calendar.create () and c2 = Calendar.create () in
      let out1 = ref [] and out2 = ref [] in
      run_schedule steps
        ~push:(fun key seq -> Calendar.push c1 key ~a:seq ~b:seq ~c:seq)
        ~drain:(fun bound ->
          Calendar.drain_until c1 bound (fun ~key:_ ~a ~b ~c -> out1 := (a, b, c) :: !out1));
      run_schedule steps
        ~push:(fun key seq -> Calendar.push c2 key ~a:seq ~b:seq ~c:seq)
        ~drain:(fun bound ->
          Calendar.drain_payloads c2 bound (fun ~a ~b ~c -> out2 := (a, b, c) :: !out2));
      !out1 = !out2)

(* Directed regression for the bucket sort watermark: partially drain a
   bucket, append more equal-key events to it, then finish draining — the
   appended suffix must still be sorted into place (a stale watermark
   would deliver it unsorted). *)
let watermark_resort () =
  let cal = Calendar.create () in
  (* One level-0 bucket: keys within [0, 1024). *)
  Calendar.push cal 30.0 ~a:0 ~b:0 ~c:0;
  Calendar.push cal 10.0 ~a:1 ~b:0 ~c:0;
  Calendar.push cal 20.0 ~a:2 ~b:0 ~c:0;
  let order = ref [] in
  let record ~key:_ ~a ~b:_ ~c:_ = order := a :: !order in
  Calendar.drain_until cal 10.0 record;
  check_int "first partial drain" 1 (List.length !order);
  (* Append into the same (already sorted, partially drained) bucket. *)
  Calendar.push cal 15.0 ~a:3 ~b:0 ~c:0;
  Calendar.push cal 20.0 ~a:4 ~b:0 ~c:0;
  (* equal-key tie with a=2 *)
  Calendar.drain_until cal 1023.0 record;
  Alcotest.(check (list int)) "sorted with FIFO ties" [ 1; 3; 2; 4; 0 ] (List.rev !order)

(* {1 Guide-table samplers vs reference searches} *)

(* Straight-line reference samplers replicating the pre-guide-table
   semantics: a linear scan for the bracketing index.  The guide-table
   fast path must map every uniform draw to the same value bit-for-bit. *)
let reference_empirical qs vs u =
  let n = Array.length qs in
  if u <= qs.(0) then vs.(0)
  else if u >= qs.(n - 1) then vs.(n - 1)
  else begin
    let lo = ref 0 in
    while !lo + 1 < n && qs.(!lo + 1) <= u do incr lo done;
    let lo = !lo in
    let q0 = qs.(lo) and q1 = qs.(lo + 1) in
    if q1 -. q0 <= 0.0 then vs.(lo)
    else begin
      let frac = (u -. q0) /. (q1 -. q0) in
      let lv0 = log vs.(lo) and lv1 = log vs.(lo + 1) in
      exp (lv0 +. (frac *. (lv1 -. lv0)))
    end
  end

let reference_pick_index cum u =
  let n = Array.length cum in
  let i = ref 0 in
  while !i < n - 1 && cum.(!i) < u do incr i done;
  !i

let points_gen =
  (* Strictly increasing quantiles in (0,1), positive values. *)
  QCheck.Gen.(
    map
      (fun (seed, n) ->
        let rng = Rng.create (1 + abs seed) in
        let qs =
          Array.init n (fun _ -> 0.001 +. (0.998 *. Rng.unit_float rng))
          |> Array.to_list
          |> List.sort_uniq compare
        in
        let qs = match qs with [ q ] -> [ q /. 2.0; q ] | qs -> qs in
        List.map (fun q -> (q, 1.0 +. (1.0e6 *. Rng.unit_float rng))) qs)
      (pair int (int_range 2 12)))

let empirical_guide_matches_reference =
  QCheck.Test.make ~name:"dist_empirical_guide_table_matches_reference" ~count:100
    (QCheck.make
       QCheck.Gen.(pair points_gen int)
       ~print:(fun (pts, seed) ->
         Printf.sprintf "%d points, seed %d" (List.length pts) seed))
    (fun (points, seed) ->
      let d = Dist.empirical points in
      let sorted = List.sort (fun (q1, _) (q2, _) -> compare q1 q2) points in
      let qs = Array.of_list (List.map fst sorted) in
      let vs = Array.of_list (List.map snd sorted) in
      (* Two RNGs on the same seed: [Dist.sample] consumes exactly one
         uniform per draw, so the streams stay aligned. *)
      let r1 = Rng.create seed and r2 = Rng.create seed in
      let ok = ref true in
      for _ = 1 to 1000 do
        let fast = Dist.sample d r1 in
        let u = Rng.unit_float r2 in
        if fast <> reference_empirical qs vs u then ok := false
      done;
      !ok)

let mixture_guide_matches_reference =
  QCheck.Test.make ~name:"dist_mixture_guide_table_matches_reference" ~count:100
    QCheck.(pair (make Gen.(int_range 1 1000) ~print:string_of_int) small_int)
    (fun (wseed, seed) ->
      let rng = Rng.create wseed in
      let n = 2 + Rng.int rng 10 in
      let weights = List.init n (fun _ -> 0.01 +. Rng.unit_float rng) in
      (* Constant components make the picked branch observable in the
         sampled value. *)
      let parts = List.mapi (fun i w -> (w, Dist.constant (float_of_int i))) weights in
      let d = Dist.mixture parts in
      let total = List.fold_left ( +. ) 0.0 weights in
      let cum = Array.make n 0.0 in
      let acc = ref 0.0 in
      List.iteri
        (fun i w ->
          acc := !acc +. (w /. total);
          cum.(i) <- !acc)
        weights;
      let r1 = Rng.create seed and r2 = Rng.create seed in
      let ok = ref true in
      for _ = 1 to 1000 do
        let fast = Dist.sample d r1 in
        let u = Rng.unit_float r2 in
        if int_of_float fast <> reference_pick_index cum u then ok := false
      done;
      !ok)

let discrete_guide_matches_reference =
  QCheck.Test.make ~name:"dist_discrete_guide_table_matches_reference" ~count:100
    QCheck.(pair (make Gen.(int_range 1 1000) ~print:string_of_int) small_int)
    (fun (wseed, seed) ->
      let rng = Rng.create wseed in
      let n = 1 + Rng.int rng 40 in
      let weights = Array.init n (fun _ -> 0.001 +. Rng.unit_float rng) in
      let total = Array.fold_left ( +. ) 0.0 weights in
      let weights = Array.map (fun w -> w /. total) weights in
      let d = Dist.discrete_of_weights weights in
      let cum = Array.make n 0.0 in
      let acc = ref 0.0 in
      Array.iteri
        (fun i w ->
          acc := !acc +. w;
          cum.(i) <- !acc)
        weights;
      let r1 = Rng.create seed and r2 = Rng.create seed in
      let ok = ref true in
      for _ = 1 to 1000 do
        let fast = Dist.discrete_sample d r1 in
        let u = Rng.unit_float r2 in
        if fast <> reference_pick_index cum u then ok := false
      done;
      !ok)

(* {1 Alias table} *)

(* The alias table may legitimately map uniforms to outcomes differently
   from the inverse-CDF samplers, so it is tested distributionally: a
   chi-squared goodness-of-fit against the target weights.  Thresholds are
   the 99.9% quantile for the degrees of freedom in play; seeds are pinned
   so the test is deterministic. *)
let alias_chi_squared () =
  let weights = [| 0.5; 0.2; 0.1; 0.08; 0.06; 0.03; 0.02; 0.01 |] in
  let t = Alias.create weights in
  check_int "length" (Array.length weights) (Alias.length t);
  let rng = Rng.create 12345 in
  let n = 200_000 in
  let counts = Array.make (Array.length weights) 0 in
  for _ = 1 to n do
    let i = Alias.sample t rng in
    counts.(i) <- counts.(i) + 1
  done;
  let chi2 = ref 0.0 in
  Array.iteri
    (fun i w ->
      let expected = w *. float_of_int n in
      let d = float_of_int counts.(i) -. expected in
      chi2 := !chi2 +. (d *. d /. expected))
    weights;
  (* df = 7, chi2 crit at p=0.001 is 24.32 *)
  if !chi2 > 24.32 then
    Alcotest.failf "alias chi-squared %.2f exceeds 24.32 (df=7)" !chi2

let alias_uniform_and_degenerate () =
  (* Uniform weights: every outcome must appear. *)
  let t = Alias.create (Array.make 16 1.0) in
  let rng = Rng.create 7 in
  let seen = Array.make 16 false in
  for _ = 1 to 10_000 do
    seen.(Alias.sample t rng) <- true
  done;
  Array.iteri (fun i s -> if not s then Alcotest.failf "outcome %d never drawn" i) seen;
  (* Single outcome: always 0. *)
  let one = Alias.create [| 42.0 |] in
  for _ = 1 to 100 do
    check_int "singleton" 0 (Alias.sample one rng)
  done;
  (* Zero-weight outcomes are never drawn. *)
  let holes = Alias.create [| 1.0; 0.0; 3.0; 0.0 |] in
  for _ = 1 to 10_000 do
    let i = Alias.sample holes rng in
    if i = 1 || i = 3 then Alcotest.failf "zero-weight outcome %d drawn" i
  done

(* {1 Int_table vs Hashtbl model} *)

let int_table_matches_hashtbl =
  QCheck.Test.make ~name:"int_table_matches_hashtbl_model" ~count:100
    QCheck.(
      pair small_int
        (list_of_size (Gen.int_range 50 400) (pair (int_range 0 3) (int_range (-100) 100))))
    (fun (salt, ops) ->
      let t = Int_table.create ~initial_capacity:4 () in
      let model : (int, int) Hashtbl.t = Hashtbl.create 16 in
      let ok = ref true in
      (* Key pool mixes small, negative, and huge magnitudes (addresses). *)
      let key_of k = if k land 1 = 0 then k * 977 else (k * 131) + (salt * 1_000_003) in
      List.iter
        (fun (op, k) ->
          let key = key_of k in
          match op with
          | 0 ->
            Int_table.set t key k;
            Hashtbl.replace model key k
          | 1 ->
            Int_table.remove t key;
            Hashtbl.remove model key
          | 2 ->
            if Int_table.mem t key <> Hashtbl.mem model key then ok := false
          | _ ->
            let expect = match Hashtbl.find_opt model key with Some v -> v | None -> min_int + 2 in
            if Int_table.find t key ~default:(min_int + 2) <> expect then ok := false)
        ops;
      if Int_table.length t <> Hashtbl.length model then ok := false;
      Hashtbl.iter
        (fun k v -> if Int_table.find t k ~default:(v + 1) <> v then ok := false)
        model;
      !ok)

let int_table_tombstone_churn () =
  (* Set/remove cycling through a fixed key range forces tombstone
     accumulation and the rehash-in-place path. *)
  let t = Int_table.create ~initial_capacity:8 () in
  for i = 1 to 100_000 do
    let k = i land 0x3f in
    Int_table.set t k i;
    Int_table.remove t k
  done;
  check_int "empty after churn" 0 (Int_table.length t);
  for k = 0 to 0x3f do
    if Int_table.mem t k then Alcotest.failf "stale key %d after churn" k
  done

let suite =
    [
      ( "calendar",
        [
          qcheck calendar_matches_event_heap;
          qcheck drain_payloads_matches_drain_until;
          Alcotest.test_case "watermark resort after partial drain" `Quick watermark_resort;
        ] );
      ( "samplers",
        [
          qcheck empirical_guide_matches_reference;
          qcheck mixture_guide_matches_reference;
          qcheck discrete_guide_matches_reference;
          Alcotest.test_case "alias chi-squared" `Quick alias_chi_squared;
          Alcotest.test_case "alias uniform and degenerate" `Quick alias_uniform_and_degenerate;
        ] );
      ( "int_table",
        [
          qcheck int_table_matches_hashtbl;
          Alcotest.test_case "tombstone churn" `Quick int_table_tombstone_churn;
        ] );
    ]
