(* Restartable-sequence tests: the preemption injector itself, staged-op
   purity, exhaustive per-step preemption of the allocator fast path, the
   slow-path fallback, stranded-cache reclaim, torn-operation detection,
   a churn-heavy million-op survival run, and the A/B restart-overhead
   accounting. *)

open Wsc_substrate
module Topology = Wsc_hw.Topology
module Cost_model = Wsc_hw.Cost_model
module Rseq = Wsc_os.Rseq
module Config = Wsc_tcmalloc.Config
module Size_class = Wsc_tcmalloc.Size_class
module Malloc = Wsc_tcmalloc.Malloc
module Backend = Wsc_backend.Backend
module Telemetry = Wsc_tcmalloc.Telemetry
module Audit = Wsc_tcmalloc.Audit
module Per_cpu_cache = Wsc_tcmalloc.Per_cpu_cache
module Transfer_cache = Wsc_tcmalloc.Transfer_cache
module Apps = Wsc_workload.Apps
module Machine = Wsc_fleet.Machine

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let rc ?(seed = 1) ?(p = 0.0) ?(budget = 3) () =
  { Rseq.seed; preempt_prob = p; max_restarts = budget }

(* One trivial restartable op: reads vcpu 0, commits a counter bump. *)
let run_unit ?(commits = ref 0) r =
  Rseq.run r
    ~read_vcpu:(fun () -> 0)
    ~stage:(fun ~vcpu:_ -> { Rseq.value = (); commit = (fun () -> incr commits) })

let expect_invalid_arg what f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Invalid_argument" what
  | exception Invalid_argument _ -> ()

let audit_clean what m =
  let report = Audit.run m in
  if not (Audit.is_clean report) then
    Alcotest.failf "%s: %s" what (Audit.to_string report)

(* {1 Injector engine} *)

let test_engine_commit_without_preemption () =
  let r = Rseq.create (rc ()) in
  let commits = ref 0 in
  let result = run_unit ~commits r in
  check_bool "committed" true (result.Rseq.outcome = Some ());
  check_int "no restarts" 0 result.Rseq.restarts;
  check_int "one commit" 1 !commits;
  let st = Rseq.stats r in
  check_int "ops" 1 st.Rseq.ops;
  check_int "committed ops" 1 st.Rseq.committed;
  check_int "fallbacks" 0 st.Rseq.fallbacks

let test_engine_forced_abort_each_step () =
  List.iteri
    (fun i step ->
      let r = Rseq.create (rc ~budget:Rseq.n_steps ()) in
      Rseq.force_preempt r ~step;
      let commits = ref 0 in
      let result = run_unit ~commits r in
      let name = Rseq.step_name step in
      check_bool (name ^ " committed") true (result.Rseq.outcome = Some ());
      check_int (name ^ " one restart") 1 result.Rseq.restarts;
      check_int (name ^ " exactly one commit") 1 !commits;
      check_int (name ^ " forced abort consumed") 1 (Rseq.stats r).Rseq.forced_aborts;
      check_bool "step_of_index inverse" true (Rseq.step_of_index i = step))
    Rseq.all_steps;
  expect_invalid_arg "step_of_index 4" (fun () -> Rseq.step_of_index Rseq.n_steps);
  expect_invalid_arg "step_of_index -1" (fun () -> Rseq.step_of_index (-1))

let test_engine_budget_exhaustion () =
  let r = Rseq.create (rc ~budget:0 ()) in
  Rseq.force_preempt r ~step:Rseq.Commit;
  let commits = ref 0 in
  let result = run_unit ~commits r in
  check_bool "fell back" true (result.Rseq.outcome = None);
  check_int "no commit on fallback" 0 !commits;
  check_int "fallback counted" 1 (Rseq.stats r).Rseq.fallbacks;
  (* The armed abort was consumed; the next op sails through. *)
  let result = run_unit ~commits r in
  check_bool "next op commits" true (result.Rseq.outcome = Some ())

let test_engine_migration_idempotent_until_consumed () =
  let r = Rseq.create (rc ()) in
  Rseq.note_migration r;
  Rseq.note_migration r;
  let first = run_unit r in
  let second = run_unit r in
  check_int "one restart from both arms" 1 first.Rseq.restarts;
  check_int "second op unaffected" 0 second.Rseq.restarts;
  check_int "one forced abort" 1 (Rseq.stats r).Rseq.forced_aborts

let test_engine_config_validation () =
  expect_invalid_arg "preempt_prob = 1" (fun () -> Rseq.create (rc ~p:1.0 ()));
  expect_invalid_arg "preempt_prob < 0" (fun () -> Rseq.create (rc ~p:(-0.1) ()));
  expect_invalid_arg "negative budget" (fun () -> Rseq.create (rc ~budget:(-1) ()))

let test_engine_deterministic_streams () =
  let run_many seed index =
    let r = Rseq.create ~index (rc ~seed ~p:0.3 ~budget:2 ()) in
    for _ = 1 to 200 do
      ignore (run_unit r)
    done;
    Rseq.stats r
  in
  check_bool "same seed, same stream" true (run_many 5 0 = run_many 5 0);
  check_bool "job index perturbs the stream" true (run_many 5 0 <> run_many 5 1)

(* {1 Staged-operation purity} *)

let test_staged_ops_mutate_only_on_commit () =
  let pcc = Per_cpu_cache.create () in
  let cls = Option.get (Size_class.of_size 64) in
  let size = Size_class.size cls in
  let rejected = Per_cpu_cache.fill pcc ~vcpu:0 ~cls ~addrs:[ 0x1000; 0x2000 ] in
  check_int "fill accepted both" 0 (List.length rejected);
  let used = Per_cpu_cache.used_bytes pcc ~vcpu:0 in
  check_int "both cached" (2 * size) used;
  let staged = Per_cpu_cache.stage_alloc pcc ~vcpu:0 ~cls in
  check_int "staging pops nothing" used (Per_cpu_cache.used_bytes pcc ~vcpu:0);
  let again = Per_cpu_cache.stage_alloc pcc ~vcpu:0 ~cls in
  check_bool "staging is repeatable" true (staged.Rseq.value = again.Rseq.value);
  let flush = Per_cpu_cache.stage_flush_batch pcc ~vcpu:0 ~cls ~n:2 in
  check_int "flush preview removes nothing" used (Per_cpu_cache.used_bytes pcc ~vcpu:0);
  check_int "flush preview sees both" 2 (List.length flush.Rseq.value);
  staged.Rseq.commit ();
  check_int "commit pops one" (used - size) (Per_cpu_cache.used_bytes pcc ~vcpu:0);
  let back =
    Per_cpu_cache.stage_dealloc pcc ~vcpu:0 ~cls (Option.get staged.Rseq.value)
  in
  check_bool "dealloc stages a hit" true back.Rseq.value;
  check_int "staged dealloc pushes nothing" (used - size)
    (Per_cpu_cache.used_bytes pcc ~vcpu:0);
  back.Rseq.commit ();
  check_int "committed dealloc restores" used (Per_cpu_cache.used_bytes pcc ~vcpu:0)

(* {1 Exhaustive per-step preemption of malloc/free} *)

(* For every preemption point, inject exactly one forced abort into an
   allocation and into a deallocation; the op must restart and commit,
   and the heap must stay byte-conserving and duplicate-free (Audit). *)
let test_exhaustive_preemption_points () =
  let clock = Clock.create () in
  let r = Rseq.create (rc ~budget:Rseq.n_steps ()) in
  let m = Malloc.create ~rseq:r ~topology:Topology.default ~clock () in
  (* Warm the caches so both hit and miss shapes are reachable. *)
  let warm = List.init 64 (fun i -> Malloc.malloc m ~cpu:(i mod 4) ~size:64) in
  audit_clean "warmup" m;
  List.iter
    (fun step ->
      let name = Rseq.step_name step in
      let aborts = (Rseq.stats r).Rseq.forced_aborts in
      Rseq.force_preempt r ~step;
      let a = Malloc.malloc m ~cpu:0 ~size:64 in
      check_int (name ^ ": alloc consumed the abort") (aborts + 1)
        (Rseq.stats r).Rseq.forced_aborts;
      audit_clean ("alloc preempted at " ^ name) m;
      Rseq.force_preempt r ~step;
      Malloc.free m ~cpu:0 a ~size:64;
      check_int (name ^ ": free consumed the abort") (aborts + 2)
        (Rseq.stats r).Rseq.forced_aborts;
      audit_clean ("free preempted at " ^ name) m)
    Rseq.all_steps;
  List.iter (fun a -> Malloc.free m ~cpu:0 a ~size:64) warm;
  audit_clean "after draining warmup" m;
  check_int "every op eventually committed" 0 (Rseq.stats r).Rseq.fallbacks

(* With a zero restart budget a single preemption forces the transfer-cache
   fallback; the op must still succeed and leave the heap consistent. *)
let test_fallback_path_consistency () =
  let clock = Clock.create () in
  let r = Rseq.create (rc ~budget:0 ()) in
  let m = Malloc.create ~rseq:r ~topology:Topology.default ~clock () in
  let warm = List.init 16 (fun _ -> Malloc.malloc m ~cpu:0 ~size:128) in
  Rseq.force_preempt r ~step:Rseq.Commit;
  let a = Malloc.malloc m ~cpu:0 ~size:128 in
  audit_clean "alloc fell back" m;
  Rseq.force_preempt r ~step:Rseq.Prepare;
  Malloc.free m ~cpu:0 a ~size:128;
  audit_clean "free fell back" m;
  check_int "both fallbacks recorded" 2 (Telemetry.rseq_fallbacks (Malloc.telemetry m));
  (* The fallback parked the freed object in the transfer cache; it must
     still be allocatable and freeable. *)
  let b = Malloc.malloc m ~cpu:0 ~size:128 in
  Malloc.free m ~cpu:0 b ~size:128;
  List.iter (fun x -> Malloc.free m ~cpu:0 x ~size:128) warm;
  audit_clean "after reuse" m

(* {1 Stranded-cache reclaim} *)

let populate_cache m ~cpu =
  let addrs = List.init 8 (fun _ -> Malloc.malloc m ~cpu ~size:256) in
  List.iter (fun a -> Malloc.free m ~cpu a ~size:256) addrs

let test_stranded_registration_and_background_drain () =
  let clock = Clock.create () in
  let r = Rseq.create (rc ()) in
  let m = Malloc.create ~rseq:r ~topology:Topology.default ~clock () in
  populate_cache m ~cpu:5;
  check_bool "cache populated" true (Per_cpu_cache.used_bytes (Malloc.per_cpu_caches m) ~vcpu:0 > 0);
  Malloc.cpu_idle m ~cpu:5;
  check_bool "retired id registered" true (Malloc.stranded_pending_ids m = [ 0 ]);
  audit_clean "registered stranded cache is not a violation" m;
  (* The background pass (period stranded_reclaim_interval_ns = 1 s) drains it. *)
  Clock.advance clock (1.5 *. Units.sec);
  check_bool "work list drained" true (Malloc.stranded_pending_ids m = []);
  check_int "cache emptied" 0 (Per_cpu_cache.used_bytes (Malloc.per_cpu_caches m) ~vcpu:0);
  check_bool "bytes recorded" true
    (Telemetry.stranded_reclaim_bytes (Malloc.telemetry m) > 0);
  check_int "one reclaim pass" 1
    (Telemetry.stranded_reclaim_events (Malloc.telemetry m));
  audit_clean "after background drain" m

let test_stranded_reuse_cancels_reclaim () =
  let clock = Clock.create () in
  let m = Malloc.create ~topology:Topology.default ~clock () in
  populate_cache m ~cpu:3;
  Malloc.cpu_idle m ~cpu:3;
  check_bool "registered" true (Malloc.stranded_pending_ids m = [ 0 ]);
  (* A new CPU acquires the retired id before the pass fires: the cache is
     live again and must not be drained out from under it. *)
  ignore (Malloc.malloc m ~cpu:7 ~size:256);
  check_bool "re-acquire clears the work list" true (Malloc.stranded_pending_ids m = []);
  Clock.advance clock (2.0 *. Units.sec);
  check_int "no reclaim happened" 0
    (Telemetry.stranded_reclaim_events (Malloc.telemetry m));
  audit_clean "reused id" m

let test_churn_flush_is_immediate () =
  let clock = Clock.create () in
  let r = Rseq.create (rc ()) in
  let m = Malloc.create ~rseq:r ~topology:Topology.default ~clock () in
  populate_cache m ~cpu:2;
  Malloc.cpu_idle ~flush:true m ~cpu:2;
  check_bool "nothing left pending" true (Malloc.stranded_pending_ids m = []);
  check_int "cache drained now" 0 (Per_cpu_cache.used_bytes (Malloc.per_cpu_caches m) ~vcpu:0);
  check_bool "drain recorded" true
    (Telemetry.stranded_reclaim_bytes (Malloc.telemetry m) > 0);
  audit_clean "after churn flush" m;
  (* Retirement armed a forced abort: the next fast-path op restarts once. *)
  let aborts = (Rseq.stats r).Rseq.forced_aborts in
  ignore (Malloc.malloc m ~cpu:4 ~size:256);
  check_int "migration aborted the next op" (aborts + 1)
    (Rseq.stats r).Rseq.forced_aborts

(* {1 Torn-operation detection} *)

let test_audit_detects_duplicate_cached_object () =
  let clock = Clock.create () in
  let m = Malloc.create ~topology:Topology.uniprocessor ~clock () in
  let a = Malloc.malloc m ~cpu:0 ~size:64 in
  Malloc.free m ~cpu:0 a ~size:64;
  (* Simulate a torn commit: the object is now cached twice. *)
  let cls = Option.get (Size_class.of_size 64) in
  ignore
    (Transfer_cache.insert (Malloc.transfer_cache m) ~cls ~addrs:[ a ] ~domain:0
       ~now:(Clock.now clock));
  let report = Audit.run m in
  check_bool "duplicate flagged" true
    (List.exists (fun v -> v.Audit.check = "torn-operation") report.Audit.violations)

(* {1 Churn-heavy survival} *)

(* A million alloc/free ops under a 2%-per-step injector with periodic CPU
   churn (both flushing and stranding), auditing the whole heap at every
   checkpoint: preemption must never lose or duplicate an object. *)
let test_million_op_churn_survival () =
  let clock = Clock.create () in
  let r = Rseq.create (rc ~seed:9 ~p:0.02 ()) in
  let m = Malloc.create ~rseq:r ~topology:Topology.default ~clock () in
  let rng = Rng.create 123 in
  let sizes = [| 64; 128; 256; 512; 1024 |] in
  let cap = 30_000 in
  let live = Array.make cap (0, 0) in
  let len = ref 0 in
  let ops = 1_000_000 in
  for op = 1 to ops do
    if (!len = 0 || Rng.bool rng) && !len < cap then begin
      let size = Rng.choose rng sizes in
      let a = Malloc.malloc m ~cpu:(Rng.int rng 8) ~size in
      live.(!len) <- (a, size);
      incr len
    end
    else begin
      let i = Rng.int rng !len in
      let a, size = live.(i) in
      live.(i) <- live.(!len - 1);
      decr len;
      Malloc.free m ~cpu:(Rng.int rng 8) a ~size
    end;
    if op mod 100_000 = 0 then begin
      (* Churn: retire a few CPUs, half flushed, half left stranded for the
         background pass (the clock advance fires it). *)
      for cpu = 0 to 7 do
        if Rng.bernoulli rng 0.3 then
          Malloc.cpu_idle ~flush:(Rng.bool rng) m ~cpu
      done;
      Clock.advance clock (0.3 *. Units.sec);
      audit_clean (Printf.sprintf "checkpoint at op %d" op) m
    end
  done;
  let st = Rseq.stats r in
  check_int "every op accounted" st.Rseq.ops (st.Rseq.committed + st.Rseq.fallbacks);
  check_bool "preemption actually exercised" true (st.Rseq.restarts > 1000);
  check_bool "stranded reclaim actually exercised" true
    (Telemetry.stranded_reclaim_events (Malloc.telemetry m) > 0);
  check_int "telemetry mirrors the injector" st.Rseq.restarts
    (Telemetry.rseq_restarts (Malloc.telemetry m))

(* {1 Restart-overhead accounting (A/B)} *)

(* Same seed, same workload, rseq off vs on: the drivers issue identical
   call sequences, so the per-CPU tier's extra charged nanoseconds must be
   exactly restarts x the fast-path hit cost (the Fig. 4 quantification). *)
let test_ab_restart_overhead_accounting () =
  let run rseq =
    let machine =
      Machine.create ~seed:11 ?rseq ~platform:Topology.default
        ~jobs:[ Apps.monarch ] ()
    in
    Machine.run machine ~duration_ns:(2.0 *. Units.sec) ~epoch_ns:Units.ms;
    Backend.telemetry (List.hd (Machine.jobs machine)).Machine.backend
  in
  let control = run None in
  let experiment = run (Some (rc ~seed:11 ~p:0.01 ())) in
  let restarts = Telemetry.rseq_restarts experiment in
  check_bool "restarts happened" true (restarts > 0);
  check_int "control has no rseq ops" 0 (Telemetry.rseq_ops control);
  let tier tel = Telemetry.tier_ns tel Cost_model.Per_cpu_cache in
  let overhead = tier experiment -. tier control in
  let expected =
    float_of_int restarts *. Cost_model.tier_hit_ns Cost_model.Per_cpu_cache
  in
  check_bool
    (Printf.sprintf "overhead %.1f ns = %d restarts x hit cost (%.1f ns)" overhead
       restarts expected)
    true
    (Float.abs (overhead -. expected) < 1.0)

let suite =
  [
    ( "rseq-engine",
      [
        Alcotest.test_case "commit without preemption" `Quick
          test_engine_commit_without_preemption;
        Alcotest.test_case "forced abort at each step" `Quick
          test_engine_forced_abort_each_step;
        Alcotest.test_case "budget exhaustion falls back" `Quick
          test_engine_budget_exhaustion;
        Alcotest.test_case "migration arming is one-shot" `Quick
          test_engine_migration_idempotent_until_consumed;
        Alcotest.test_case "config validation" `Quick test_engine_config_validation;
        Alcotest.test_case "deterministic streams" `Quick
          test_engine_deterministic_streams;
        Alcotest.test_case "staged ops mutate only on commit" `Quick
          test_staged_ops_mutate_only_on_commit;
      ] );
    ( "rseq-malloc",
      [
        Alcotest.test_case "exhaustive preemption points" `Quick
          test_exhaustive_preemption_points;
        Alcotest.test_case "fallback path consistency" `Quick
          test_fallback_path_consistency;
        Alcotest.test_case "stranded registration and drain" `Quick
          test_stranded_registration_and_background_drain;
        Alcotest.test_case "reuse cancels stranded reclaim" `Quick
          test_stranded_reuse_cancels_reclaim;
        Alcotest.test_case "churn flush is immediate" `Quick
          test_churn_flush_is_immediate;
        Alcotest.test_case "audit detects duplicates" `Quick
          test_audit_detects_duplicate_cached_object;
        Alcotest.test_case "million-op churn survival" `Slow
          test_million_op_churn_survival;
        Alcotest.test_case "A/B restart overhead accounting" `Slow
          test_ab_restart_overhead_accounting;
      ] );
  ]
