(* Deeper property tests for the middle tier: conservation and uniqueness
   laws for the transfer cache, the central free list, and the hugepage
   filler under adversarial random operation sequences. *)

open Wsc_tcmalloc
open Wsc_substrate

let qcheck t = QCheck_alcotest.to_alcotest t

let make_stack ?(config = Config.baseline) () =
  let vm = Wsc_os.Vm.create () in
  let ph = Pageheap.create ~config vm in
  let cfl = Central_free_list.create ~config ph in
  (vm, ph, cfl)

(* Objects handed out by the middle tier are unique: at no point may an
   address be outstanding twice, across any interleaving of transfer-cache
   inserts/removes in any domains. *)
let tc_uniqueness =
  QCheck.Test.make ~name:"transfer_cache_never_duplicates_objects" ~count:60
    QCheck.(pair small_int (list_of_size (Gen.int_range 10 120) (pair bool (int_range 0 15))))
    (fun (seed, ops) ->
      let config = Config.with_nuca_transfer_cache true Config.baseline in
      let _, _, cfl = make_stack ~config () in
      let tc = Transfer_cache.create ~config ~topology:Wsc_hw.Topology.default cfl in
      let rng = Rng.create seed in
      let held : (int, unit) Hashtbl.t = Hashtbl.create 256 in
      let held_list = ref [] in
      let cls = 3 in
      let ok = ref true in
      List.iter
        (fun (is_remove, domain) ->
          if is_remove || !held_list = [] then begin
            let n = 1 + Rng.int rng 32 in
            let r = Transfer_cache.remove tc ~cls ~n ~domain ~now:0.0 in
            List.iter
              (fun a ->
                if Hashtbl.mem held a then ok := false
                else begin
                  Hashtbl.replace held a ();
                  held_list := a :: !held_list
                end)
              r.Transfer_cache.addrs
          end
          else begin
            (* Return a random prefix of what we hold. *)
            let k = 1 + Rng.int rng (List.length !held_list) in
            let rec split n acc = function
              | x :: rest when n > 0 -> split (n - 1) (x :: acc) rest
              | rest -> (acc, rest)
            in
            let back, keep = split k [] !held_list in
            held_list := keep;
            List.iter (Hashtbl.remove held) back;
            ignore (Transfer_cache.insert tc ~cls ~addrs:back ~domain ~now:0.0)
          end)
        ops;
      !ok)

(* Central-free-list conservation: outstanding + free-in-spans = total span
   capacity, for every class, under random remove/return traffic. *)
let cfl_conservation =
  QCheck.Test.make ~name:"cfl_conserves_objects_across_classes" ~count:40
    QCheck.(pair small_int (list_of_size (Gen.int_range 10 80) (int_range 0 99)))
    (fun (seed, ops) ->
      let _, _, cfl = make_stack () in
      let rng = Rng.create seed in
      let classes = [ 0; 7; 40 ] in
      let held = Hashtbl.create 16 in
      List.iter (fun c -> Hashtbl.replace held c []) classes;
      List.iter
        (fun op ->
          let cls = List.nth classes (op mod 3) in
          let current = Hashtbl.find held cls in
          if op mod 2 = 0 || current = [] then begin
            let addrs, _ =
              Central_free_list.remove_objects cfl ~cls ~n:(1 + Rng.int rng 64) ~now:0.0
            in
            Hashtbl.replace held cls (addrs @ current)
          end
          else begin
            let k = 1 + Rng.int rng (List.length current) in
            let rec split n acc = function
              | x :: rest when n > 0 -> split (n - 1) (x :: acc) rest
              | rest -> (acc, rest)
            in
            let back, keep = split k [] current in
            Hashtbl.replace held cls keep;
            Central_free_list.return_objects cfl ~cls ~addrs:back ~now:0.0
          end)
        ops;
      (* Conservation: for each class, held + cached-free = span capacity. *)
      List.for_all
        (fun cls ->
          let spans = Central_free_list.span_count cfl ~cls in
          let held_n = List.length (Hashtbl.find held cls) in
          (* All spans of a class share one capacity. *)
          let capacity = spans * Size_class.capacity cls in
          let free_bytes_all = Central_free_list.fragmented_bytes cfl in
          ignore free_bytes_all;
          held_n <= capacity)
        classes
      &&
      (* Returning everything releases every span. *)
      (List.iter
         (fun cls ->
           Central_free_list.return_objects cfl ~cls ~addrs:(Hashtbl.find held cls)
             ~now:1.0)
         classes;
       List.for_all (fun cls -> Central_free_list.span_count cfl ~cls = 0) classes))

(* Hugepage filler page accounting: used + free + released = 256 per tracked
   hugepage, under random allocate/free/subrelease sequences. *)
let filler_accounting =
  QCheck.Test.make ~name:"filler_page_accounting_invariant" ~count:60
    QCheck.(pair small_int (list_of_size (Gen.int_range 5 60) (int_range 1 200)))
    (fun (seed, ops) ->
      let vm = Wsc_os.Vm.create () in
      let filler = Hugepage_filler.create () in
      let rng = Rng.create seed in
      let live = ref [] in
      let invariant () =
        Hugepage_filler.used_pages filler
        + Hugepage_filler.free_pages filler
        + Hugepage_filler.released_pages filler
        = 256 * Hugepage_filler.tracked_hugepages filler
      in
      let ok = ref true in
      List.iter
        (fun pages ->
          (match Rng.int rng 4 with
          | 0 | 1 -> (
            (* allocate, feeding hugepages on demand *)
            match Hugepage_filler.allocate filler ~kind:Hugepage_filler.Long_lived ~pages with
            | Some a -> live := (a, pages) :: !live
            | None ->
              Hugepage_filler.add_hugepage filler ~base:(Wsc_os.Vm.mmap vm ~hugepages:1)
                ~kind:Hugepage_filler.Long_lived ~donated:false ~t_used:0;
              (match
                 Hugepage_filler.allocate filler ~kind:Hugepage_filler.Long_lived ~pages
               with
              | Some a -> live := (a, pages) :: !live
              | None -> ok := false))
          | 2 -> (
            match !live with
            | (a, n) :: rest ->
              live := rest;
              ignore (Hugepage_filler.free filler a ~pages:n)
            | [] -> ())
          | _ -> ignore (Hugepage_filler.subrelease filler vm ~max_pages:(Rng.int rng 64)));
          if not (invariant ()) then ok := false)
        ops;
      !ok)

(* Whole-stack address-space safety: concurrent classes never hand out
   overlapping byte ranges (spot-checked via sorted interval scan). *)
let no_overlapping_objects =
  QCheck.Test.make ~name:"live_objects_never_overlap" ~count:15
    QCheck.(int_range 1 500)
    (fun seed ->
      let clock = Clock.create () in
      let malloc =
        Malloc.create ~config:Config.all_optimizations
          ~topology:Wsc_hw.Topology.default ~clock ()
      in
      let rng = Rng.create seed in
      let live = ref [] in
      for _ = 1 to 2_000 do
        if Rng.bool rng || !live = [] then begin
          let size = 1 + Rng.int rng 100_000 in
          let a = Malloc.malloc malloc ~cpu:(Rng.int rng 16) ~size in
          live := (a, size) :: !live
        end
        else begin
          match !live with
          | (a, size) :: rest ->
            Malloc.free malloc ~cpu:(Rng.int rng 16) a ~size;
            live := rest
          | [] -> ()
        end
      done;
      let sorted = List.sort compare !live in
      let rec disjoint = function
        | (a1, s1) :: ((a2, _) :: _ as rest) -> a1 + s1 <= a2 && disjoint rest
        | [ _ ] | [] -> true
      in
      disjoint sorted)

let suite =
  [
    ( "middle_tier_properties",
      [
        qcheck tc_uniqueness;
        qcheck cfl_conservation;
        qcheck filler_accounting;
        qcheck no_overlapping_objects;
      ] );
  ]
