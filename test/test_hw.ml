(* Tests for wsc_hw: topology, latency classification, cost model, TLB model
   and the productivity model. *)

open Wsc_hw

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_close msg tol expected actual = Alcotest.(check (float tol)) msg expected actual

(* {1 Topology} *)

let test_topology_counts () =
  let t = Topology.default in
  check_int "domains" 16 (Topology.num_domains t);
  check_int "cpus" (2 * 8 * 9 * 2) (Topology.num_cpus t)

let test_topology_generations () =
  check_int "five generations" 5 (Array.length Topology.generations);
  let oldest = Topology.generations.(0) and newest = Topology.generations.(4) in
  let growth =
    float_of_int (Topology.num_cpus newest) /. float_of_int (Topology.num_cpus oldest)
  in
  check_bool "~4x hyperthread growth" true (growth >= 3.5 && growth <= 4.5);
  check_bool "newest is chiplet" true (newest.Topology.domains_per_socket > 1);
  check_bool "oldest is monolithic" true (oldest.Topology.domains_per_socket = 1)

let test_topology_domain_mapping () =
  let t = Topology.default in
  let cpus_per_domain = 9 * 2 in
  check_int "cpu 0 domain" 0 (Topology.domain_of_cpu t 0);
  check_int "last of domain 0" 0 (Topology.domain_of_cpu t (cpus_per_domain - 1));
  check_int "first of domain 1" 1 (Topology.domain_of_cpu t cpus_per_domain);
  check_int "socket of cpu 0" 0 (Topology.socket_of_cpu t 0);
  check_int "socket of last cpu" 1 (Topology.socket_of_cpu t (Topology.num_cpus t - 1))

let test_topology_cpus_of_domain () =
  let t = Topology.default in
  let cpus = Topology.cpus_of_domain t 2 in
  check_int "domain size" 18 (List.length cpus);
  List.iter (fun cpu -> check_int "round trip" 2 (Topology.domain_of_cpu t cpu)) cpus

let test_topology_domain_partition () =
  (* Every CPU belongs to exactly one domain's cpu list. *)
  let t = Topology.generations.(3) in
  let all =
    List.concat_map (Topology.cpus_of_domain t)
      (List.init (Topology.num_domains t) Fun.id)
  in
  check_int "partition covers all" (Topology.num_cpus t) (List.length all);
  check_int "no duplicates" (Topology.num_cpus t)
    (List.length (List.sort_uniq compare all))

let test_topology_cycles () =
  let t = Topology.default in
  check_close "3GHz: 1ns = 3 cycles" 1e-9 3.0 (Topology.cycles_of_ns t 1.0);
  check_close "round trip" 1e-9 42.0 (Topology.ns_of_cycles t (Topology.cycles_of_ns t 42.0))

(* {1 Latency} *)

let test_latency_classification () =
  let t = Topology.default in
  let d0_a = 0 and d0_b = 1 in
  let d1 = 18 (* first cpu of domain 1, same socket *) in
  let other_socket = Topology.num_cpus t - 1 in
  check_bool "same core" true
    (Latency.classify t ~src_cpu:d0_a ~dst_cpu:d0_a = Latency.Same_core);
  check_bool "intra domain" true
    (Latency.classify t ~src_cpu:d0_a ~dst_cpu:d0_b = Latency.Intra_domain);
  check_bool "inter domain" true
    (Latency.classify t ~src_cpu:d0_a ~dst_cpu:d1 = Latency.Inter_domain);
  check_bool "inter socket" true
    (Latency.classify t ~src_cpu:d0_a ~dst_cpu:other_socket = Latency.Inter_socket)

let test_latency_ratio () =
  (* Fig. 11: inter-domain latency is 2.07x intra-domain. *)
  check_close "2.07x" 1e-6 2.07 (Latency.inter_domain_ns /. Latency.intra_domain_ns)

let test_latency_ordering () =
  check_bool "monotone" true
    (Latency.transfer_ns Latency.Same_core < Latency.transfer_ns Latency.Intra_domain
    && Latency.transfer_ns Latency.Intra_domain < Latency.transfer_ns Latency.Inter_domain
    && Latency.transfer_ns Latency.Inter_domain < Latency.transfer_ns Latency.Inter_socket)

(* {1 Cost model} *)

let test_cost_model_fig4 () =
  (* Fig. 4 anchors. *)
  check_close "per-CPU 3.1ns" 1e-9 3.1 Cost_model.per_cpu_cache_ns;
  check_close "pageheap 137ns" 1e-9 137.0 Cost_model.pageheap_ns;
  check_close "mmap 12916.7ns" 1e-9 12916.7 Cost_model.mmap_ns

let test_cost_model_ordering () =
  let rec ordered = function
    | a :: (b :: _ as rest) ->
      Cost_model.tier_hit_ns a < Cost_model.tier_hit_ns b && ordered rest
    | [ _ ] | [] -> true
  in
  check_bool "tiers get slower going down" true (ordered Cost_model.all_tiers)

let test_cost_model_names () =
  Alcotest.(check string) "name" "CPUCache" (Cost_model.tier_name Cost_model.Per_cpu_cache);
  Alcotest.(check string) "name" "mmap" (Cost_model.tier_name Cost_model.Mmap)

(* {1 TLB model} *)

let test_tlb_reference_point () =
  check_close "reference -> 1.0" 1e-9 1.0
    (Tlb_model.relative_misses ~coverage:Tlb_model.reference_coverage)

let test_tlb_fig17_calibration () =
  (* Fig. 17: coverage 54.4% -> 56.2% gives relative misses 0.839. *)
  check_close "0.839 at 56.2%" 1e-6 0.839 (Tlb_model.relative_misses ~coverage:0.562)

let test_tlb_monotone () =
  let m1 = Tlb_model.relative_misses ~coverage:0.5 in
  let m2 = Tlb_model.relative_misses ~coverage:0.6 in
  let m3 = Tlb_model.relative_misses ~coverage:0.7 in
  check_bool "more coverage, fewer misses" true (m1 > m2 && m2 > m3)

let test_tlb_walk_fraction () =
  let base = 0.0916 (* fleet, Table 2 *) in
  let after = Tlb_model.walk_fraction ~base_walk_fraction:base ~coverage:0.562 in
  check_bool "walk fraction shrinks" true (after < base);
  check_close "scales with relative misses" 1e-9 (base *. 0.839) after

(* {1 Productivity} *)

let fleet_params =
  {
    Productivity.base_cpi = 1.0;
    llc_mpki = 2.52;
    llc_miss_penalty = 60.0;
    alloc_locality_share = 0.12;
    dtlb_walk_fraction = 0.0916;
    instructions_per_request = 1.0e6;
    malloc_cycle_fraction = 0.043;
  }

let test_productivity_mpki_locality () =
  let baseline =
    Productivity.mpki_with_locality fleet_params ~remote_fraction:0.4
      ~baseline_remote_fraction:0.4
  in
  check_close "no change at baseline" 1e-9 fleet_params.Productivity.llc_mpki baseline;
  let improved =
    Productivity.mpki_with_locality fleet_params ~remote_fraction:0.1
      ~baseline_remote_fraction:0.4
  in
  check_bool "less remote -> lower mpki" true (improved < baseline);
  let zero =
    Productivity.mpki_with_locality fleet_params ~remote_fraction:0.0
      ~baseline_remote_fraction:0.4
  in
  check_close "floor is fixed component" 1e-9 (2.52 *. 0.88) zero

let test_productivity_cpi_monotone () =
  let c1 = Productivity.cpi fleet_params ~mpki:2.52 ~walk_fraction:0.09 in
  let c2 = Productivity.cpi fleet_params ~mpki:2.41 ~walk_fraction:0.09 in
  let c3 = Productivity.cpi fleet_params ~mpki:2.41 ~walk_fraction:0.06 in
  check_bool "lower mpki -> lower cpi" true (c2 < c1);
  check_bool "lower walks -> lower cpi" true (c3 < c2)

let test_productivity_throughput_change () =
  let topo = Topology.default in
  let change =
    Productivity.throughput_change_pct topo fleet_params ~mpki_before:2.52
      ~walk_before:0.0916 ~mpki_after:2.41 ~walk_after:0.0916
  in
  (* Table 1 fleet row: ~0.32% throughput from the MPKI improvement. *)
  check_bool "positive and sub-1%" true (change > 0.1 && change < 1.0)

let test_productivity_throughput_positive () =
  let topo = Topology.default in
  let thr =
    Productivity.throughput_per_core topo fleet_params ~mpki:2.52 ~walk_fraction:0.0916
  in
  check_bool "sane RPS" true (thr > 100.0 && thr < 1.0e5)

(* {1 Golden-value tables}

   The paper's calibration constants, pinned exactly.  The themed tests
   above check behaviour (ordering, monotonicity, ratios); these tables
   exist solely to catch accidental drift of any Fig. 4 / Fig. 11 /
   Fig. 17 constant during refactors — if one fails, either revert the
   constant or update the table *and* the paper citation next to the
   constant's definition. *)

let test_golden_cost_model () =
  List.iter
    (fun (tier, name, ns) ->
      Alcotest.(check string) (name ^ " name") name (Cost_model.tier_name tier);
      check_close (name ^ " hit ns") 1e-9 ns (Cost_model.tier_hit_ns tier))
    [
      (Cost_model.Per_cpu_cache, "CPUCache", 3.1);
      (Cost_model.Transfer_cache, "TransferCache", 25.0);
      (Cost_model.Central_free_list, "CentralFreeList", 81.3);
      (Cost_model.Pageheap, "PageHeap", 137.0);
      (Cost_model.Mmap, "mmap", 12916.7);
    ];
  check_close "prefetch 0.9ns" 1e-9 0.9 Cost_model.prefetch_ns;
  check_close "sampling 220ns" 1e-9 220.0 Cost_model.sampling_ns;
  check_int "five tiers" 5 (List.length Cost_model.all_tiers)

let test_golden_latency () =
  List.iter
    (fun (locality, label, ns) ->
      check_close label 1e-9 ns (Latency.transfer_ns locality))
    [
      (Latency.Same_core, "same-core 0ns", 0.0);
      (Latency.Intra_domain, "intra-domain 40ns", 40.0);
      (Latency.Inter_domain, "inter-domain 82.8ns", 82.8);
      (Latency.Inter_socket, "inter-socket 135ns", 135.0);
    ];
  (* Fig. 11's headline: crossing a CCX boundary costs 2.07x. *)
  check_close "fig11 ratio 2.07" 1e-9 2.07
    (Latency.transfer_ns Latency.Inter_domain /. Latency.transfer_ns Latency.Intra_domain)

let test_golden_tlb_model () =
  check_close "reference coverage 54.4%" 1e-9 0.544 Tlb_model.reference_coverage;
  check_close "miss sensitivity -ln(0.839)/0.018" 1e-9
    (-.log 0.839 /. 0.018)
    Tlb_model.miss_sensitivity;
  check_close "walk cycle penalty 35" 1e-9 35.0 Tlb_model.walk_cycle_penalty;
  (* The Fig. 17 calibration point the sensitivity was solved from. *)
  check_close "0.839 at 56.2% coverage" 1e-12 0.839
    (Tlb_model.relative_misses ~coverage:0.562)

let suite =
  [
    ( "topology",
      [
        Alcotest.test_case "counts" `Quick test_topology_counts;
        Alcotest.test_case "generations" `Quick test_topology_generations;
        Alcotest.test_case "domain mapping" `Quick test_topology_domain_mapping;
        Alcotest.test_case "cpus of domain" `Quick test_topology_cpus_of_domain;
        Alcotest.test_case "domain partition" `Quick test_topology_domain_partition;
        Alcotest.test_case "cycle conversion" `Quick test_topology_cycles;
      ] );
    ( "latency",
      [
        Alcotest.test_case "classification" `Quick test_latency_classification;
        Alcotest.test_case "fig11 ratio" `Quick test_latency_ratio;
        Alcotest.test_case "ordering" `Quick test_latency_ordering;
      ] );
    ( "cost_model",
      [
        Alcotest.test_case "fig4 anchors" `Quick test_cost_model_fig4;
        Alcotest.test_case "tier ordering" `Quick test_cost_model_ordering;
        Alcotest.test_case "names" `Quick test_cost_model_names;
      ] );
    ( "tlb_model",
      [
        Alcotest.test_case "reference point" `Quick test_tlb_reference_point;
        Alcotest.test_case "fig17 calibration" `Quick test_tlb_fig17_calibration;
        Alcotest.test_case "monotone" `Quick test_tlb_monotone;
        Alcotest.test_case "walk fraction" `Quick test_tlb_walk_fraction;
      ] );
    ( "golden",
      [
        Alcotest.test_case "fig4 cost table" `Quick test_golden_cost_model;
        Alcotest.test_case "fig11 latency table" `Quick test_golden_latency;
        Alcotest.test_case "fig17 tlb table" `Quick test_golden_tlb_model;
      ] );
    ( "productivity",
      [
        Alcotest.test_case "mpki locality" `Quick test_productivity_mpki_locality;
        Alcotest.test_case "cpi monotone" `Quick test_productivity_cpi_monotone;
        Alcotest.test_case "throughput change" `Quick test_productivity_throughput_change;
        Alcotest.test_case "throughput positive" `Quick test_productivity_throughput_positive;
      ] );
  ]
