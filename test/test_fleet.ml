(* Tests for wsc_fleet: machines, the fleet builder, GWP aggregation and
   the A/B experiment framework. *)

open Wsc_substrate
open Wsc_fleet
module Config = Wsc_tcmalloc.Config
module Malloc = Wsc_tcmalloc.Malloc
module Backend = Wsc_backend.Backend
module Apps = Wsc_workload.Apps
module Profile = Wsc_workload.Profile
module Driver = Wsc_workload.Driver

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_close msg tol expected actual = Alcotest.(check (float tol)) msg expected actual

let small_machine ?(config = Config.baseline) ?(jobs = [ Apps.redis ]) () =
  Machine.create ~seed:5 ~config ~platform:Wsc_hw.Topology.default ~jobs ()

(* {1 Machine} *)

let test_machine_runs_jobs () =
  let m = small_machine ~jobs:[ Apps.redis; Apps.disk ] () in
  Machine.run m ~duration_ns:(2.0 *. Units.sec) ~epoch_ns:Units.ms;
  let jobs = Machine.jobs m in
  check_int "two jobs" 2 (List.length jobs);
  List.iter
    (fun job ->
      if Driver.allocations job.Machine.driver = 0 then
        Alcotest.failf "%s did no work" job.Machine.profile.Profile.name)
    jobs

let test_machine_shared_clock () =
  let m = small_machine ~jobs:[ Apps.redis; Apps.redis ] () in
  Machine.run m ~duration_ns:(1.0 *. Units.sec) ~epoch_ns:Units.ms;
  check_close "clock advanced" 1e-3 (1.0 *. Units.sec) (Clock.now (Machine.clock m))

let test_machine_total_rss () =
  let m = small_machine () in
  Machine.run m ~duration_ns:(2.0 *. Units.sec) ~epoch_ns:Units.ms;
  let total = Machine.total_rss m in
  let by_job =
    List.fold_left
      (fun acc j -> acc + (Backend.heap_stats j.Machine.backend).Malloc.resident_bytes)
      0 (Machine.jobs m)
  in
  check_int "total rss = sum of jobs" by_job total

(* {1 Fleet} *)

let test_fleet_shape () =
  let fleet = Fleet.create ~seed:1 ~num_machines:5 ~num_binaries:10 ~jobs_per_machine:2 () in
  check_int "machines" 5 (List.length (Fleet.machines fleet));
  check_int "jobs" 10 (List.length (Fleet.jobs fleet));
  check_int "binaries" 10 (Array.length (Fleet.binary_population fleet))

let test_fleet_popularity_bias () =
  (* With a strong Zipf, the most popular binaries appear most often. *)
  let fleet = Fleet.create ~seed:2 ~num_machines:40 ~num_binaries:30 ~zipf_s:1.2 () in
  let counts = Hashtbl.create 16 in
  List.iter
    (fun job ->
      let n = job.Machine.profile.Profile.name in
      Hashtbl.replace counts n (1 + Option.value ~default:0 (Hashtbl.find_opt counts n)))
    (Fleet.jobs fleet);
  let top = (Fleet.binary_population fleet).(0).Profile.name in
  let top_count = Option.value ~default:0 (Hashtbl.find_opt counts top) in
  check_bool "top binary appears often" true (top_count >= 5)

let test_fleet_platform_mix () =
  let fleet = Fleet.create ~seed:3 ~num_machines:40 () in
  let generations =
    List.sort_uniq compare
      (List.map (fun m -> (Machine.platform m).Wsc_hw.Topology.generation)
         (Fleet.machines fleet))
  in
  check_bool "several platform generations" true (List.length generations >= 3)

let test_fleet_invalid_shape () =
  Alcotest.check_raises "bad shape" (Invalid_argument "Fleet.create: bad shape")
    (fun () -> ignore (Fleet.create ~num_machines:0 ()))

(* Everything observable about a fleet, per machine: clock position, heap
   stats and driver progress of every job.  Structural equality of this is
   what "restore is exact" means below. *)
let fleet_digest fleet =
  List.map
    (fun m ->
      ( Wsc_substrate.Clock.now (Machine.clock m),
        List.map
          (fun (j : Machine.job) ->
            ( Backend.heap_stats j.Machine.backend,
              Driver.requests_completed j.Machine.driver,
              Driver.allocations j.Machine.driver,
              Driver.live_objects j.Machine.driver ))
          (Machine.jobs m) ))
    (Fleet.machines fleet)

(* Restoring a fleet snapshot and continuing under [~jobs:4] must land on
   exactly the same state as [~jobs:1]: machines are independent, so the
   worker count is pure mechanism.  Routed through the on-disk
   [Persist.save_fleet]/[load_fleet] container so the file path is covered
   too, not just the in-memory [Fleet.checkpoint] blob. *)
let test_fleet_restore_jobs_invariant () =
  let fleet = Fleet.create ~seed:11 ~num_machines:4 ~num_binaries:6 ~jobs_per_machine:2 () in
  let (_ : Machine.summary list) =
    Fleet.run fleet ~jobs:2 ~duration_ns:(0.5 *. Units.sec) ~epoch_ns:Units.ms
  in
  let path = Filename.temp_file "wsc_fleet" ".wsnap" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      Wsc_persist.Persist.save_fleet fleet ~path;
      let serial = Wsc_persist.Persist.load_fleet ~path in
      let parallel = Wsc_persist.Persist.load_fleet ~path in
      let s1 = Fleet.run serial ~jobs:1 ~duration_ns:(0.5 *. Units.sec) ~epoch_ns:Units.ms in
      let s4 = Fleet.run parallel ~jobs:4 ~duration_ns:(0.5 *. Units.sec) ~epoch_ns:Units.ms in
      check_bool "--jobs 4 summaries = --jobs 1 summaries" true (s1 = s4);
      check_int "restored machine count" 4 (List.length (Fleet.machines serial));
      check_bool "--jobs 4 = --jobs 1" true (fleet_digest serial = fleet_digest parallel);
      check_bool "resumed fleets advanced past the snapshot" true
        (fleet_digest serial <> fleet_digest fleet))

(* {1 Gwp} *)

let run_job profile =
  let m = small_machine ~jobs:[ profile ] () in
  Machine.run m ~duration_ns:(3.0 *. Units.sec) ~epoch_ns:Units.ms;
  List.hd (Machine.jobs m)

let test_gwp_malloc_fraction_sane () =
  let job = run_job Apps.monarch in
  let f = Gwp.malloc_cycle_fraction job in
  check_bool "fraction in (0, 0.5)" true (f > 0.0 && f < 0.5)

let test_gwp_cycle_breakdown_sums_to_one () =
  let job = run_job Apps.monarch in
  let cb = Gwp.cycle_breakdown [ job ] in
  let total =
    cb.Gwp.cpu_cache +. cb.Gwp.transfer_cache +. cb.Gwp.central_free_list
    +. cb.Gwp.pageheap +. cb.Gwp.sampled +. cb.Gwp.prefetch +. cb.Gwp.other
  in
  check_close "sums to 1" 1e-6 1.0 total;
  check_bool "front-end dominates" true (cb.Gwp.cpu_cache > cb.Gwp.transfer_cache)

let test_gwp_fragmentation_breakdown_sums_to_one () =
  let job = run_job Apps.monarch in
  let fb = Gwp.fragmentation_breakdown [ job ] in
  let total =
    fb.Gwp.fb_cpu_cache +. fb.Gwp.fb_transfer_cache +. fb.Gwp.fb_central_free_list
    +. fb.Gwp.fb_pageheap +. fb.Gwp.fb_internal
  in
  check_close "sums to 1" 1e-6 1.0 total

let test_gwp_merged_histograms () =
  let a = run_job Apps.redis and b = run_job Apps.disk in
  let count_h, bytes_h = Gwp.merged_size_histograms [ a; b ] in
  check_bool "count weight positive" true (Histogram.total_weight count_h > 0.0);
  check_bool "bytes exceed counts" true
    (Histogram.total_weight bytes_h > Histogram.total_weight count_h)

let test_gwp_binary_usage_sorted () =
  let jobs = [ run_job Apps.redis; run_job Apps.monarch ] in
  match Gwp.binary_usage jobs with
  | [ first; second ] ->
    check_bool "descending malloc time" true (first.Gwp.malloc_ns >= second.Gwp.malloc_ns)
  | other -> Alcotest.failf "expected 2 rows, got %d" (List.length other)

let test_gwp_lifetime_bins_merge () =
  let a = run_job Apps.monarch in
  let bins = Gwp.merged_lifetime_bins [ a; a ] in
  check_bool "bins present" true (bins <> [])

(* {1 Ab_test} *)

let quick_ab experiment =
  Ab_test.run_app ~seed:9 ~replicas:1 ~warmup_ns:(2.0 *. Units.sec)
    ~duration_ns:(4.0 *. Units.sec) ~control:Config.baseline ~experiment Apps.redis

let test_ab_null_experiment_is_neutral () =
  (* Baseline vs baseline must measure exactly zero everywhere. *)
  let o = quick_ab Config.baseline in
  check_close "throughput" 1e-9 0.0 o.Ab_test.throughput_change_pct;
  check_close "memory" 1e-9 0.0 o.Ab_test.memory_change_pct;
  check_close "cpi" 1e-9 0.0 o.Ab_test.cpi_change_pct;
  check_close "mpki unchanged" 1e-9 o.Ab_test.mpki_before o.Ab_test.mpki_after;
  check_close "walk unchanged" 1e-9 o.Ab_test.walk_before_pct o.Ab_test.walk_after_pct

let test_ab_mismatched_profiles_rejected () =
  let a = run_job Apps.redis and b = run_job Apps.disk in
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Ab_test.compare_jobs: mismatched profiles") (fun () ->
      ignore (Ab_test.compare_jobs ~control:a ~experiment:b))

let test_ab_carries_before_columns () =
  let o = quick_ab (Config.with_lifetime_aware_filler true Config.baseline) in
  (* Table 1/2 "Before" columns come straight from the profile. *)
  check_close "mpki before" 1e-9
    Apps.redis.Profile.productivity.Wsc_hw.Productivity.llc_mpki o.Ab_test.mpki_before;
  check_close "walk before" 1e-9
    (100.0 *. Apps.redis.Profile.productivity.Wsc_hw.Productivity.dtlb_walk_fraction)
    o.Ab_test.walk_before_pct

let test_ab_fleet_aggregates () =
  let outcome =
    Ab_test.run_fleet ~seed:4 ~num_machines:2 ~warmup_ns:(1.0 *. Units.sec)
      ~duration_ns:(3.0 *. Units.sec) ~control:Config.baseline
      ~experiment:Config.baseline ()
  in
  Alcotest.(check string) "fleet row" "fleet" outcome.Ab_test.fleet.Ab_test.app;
  check_bool "per-app rows" true (outcome.Ab_test.per_app <> []);
  check_close "null fleet experiment neutral" 1e-6 0.0
    outcome.Ab_test.fleet.Ab_test.throughput_change_pct

let suite =
  [
    ( "machine",
      [
        Alcotest.test_case "runs jobs" `Quick test_machine_runs_jobs;
        Alcotest.test_case "shared clock" `Quick test_machine_shared_clock;
        Alcotest.test_case "total rss" `Quick test_machine_total_rss;
      ] );
    ( "fleet",
      [
        Alcotest.test_case "shape" `Quick test_fleet_shape;
        Alcotest.test_case "popularity bias" `Quick test_fleet_popularity_bias;
        Alcotest.test_case "platform mix" `Quick test_fleet_platform_mix;
        Alcotest.test_case "invalid shape" `Quick test_fleet_invalid_shape;
        Alcotest.test_case "restore jobs invariant" `Quick test_fleet_restore_jobs_invariant;
      ] );
    ( "gwp",
      [
        Alcotest.test_case "malloc fraction sane" `Quick test_gwp_malloc_fraction_sane;
        Alcotest.test_case "cycle breakdown sums" `Quick test_gwp_cycle_breakdown_sums_to_one;
        Alcotest.test_case "frag breakdown sums" `Quick
          test_gwp_fragmentation_breakdown_sums_to_one;
        Alcotest.test_case "merged histograms" `Quick test_gwp_merged_histograms;
        Alcotest.test_case "binary usage sorted" `Quick test_gwp_binary_usage_sorted;
        Alcotest.test_case "lifetime bins merge" `Quick test_gwp_lifetime_bins_merge;
      ] );
    ( "ab_test",
      [
        Alcotest.test_case "null experiment neutral" `Quick test_ab_null_experiment_is_neutral;
        Alcotest.test_case "mismatched profiles" `Quick test_ab_mismatched_profiles_rejected;
        Alcotest.test_case "before columns" `Quick test_ab_carries_before_columns;
        Alcotest.test_case "fleet aggregates" `Quick test_ab_fleet_aggregates;
      ] );
  ]
