(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (see DESIGN.md Sec. 3 for the experiment index) and runs
   Bechamel microbenchmarks of the simulator's hot paths.

     dune exec bench/main.exe                 # everything
     dune exec bench/main.exe -- fig7 table1  # selected experiments
     dune exec bench/main.exe -- --quick all  # scaled-down durations

   Absolute numbers come from a simulated allocator on synthetic workloads;
   the reproduction target is the paper's *shape* — orderings, rough
   factors, crossovers.  EXPERIMENTS.md records paper-vs-measured. *)

open Wsc_substrate
module Config = Wsc_tcmalloc.Config
module Malloc = Wsc_tcmalloc.Malloc
module Backend = Wsc_backend.Backend
module Telemetry = Wsc_tcmalloc.Telemetry
module Size_class = Wsc_tcmalloc.Size_class
module Span_stats = Wsc_tcmalloc.Span_stats
module Cost_model = Wsc_hw.Cost_model
module Topology = Wsc_hw.Topology
module Latency = Wsc_hw.Latency
module Tlb_model = Wsc_hw.Tlb_model
module Apps = Wsc_workload.Apps
module Profile = Wsc_workload.Profile
module Driver = Wsc_workload.Driver
module Machine = Wsc_fleet.Machine
module Fleet = Wsc_fleet.Fleet
module Campaign = Wsc_fleet.Campaign
module Gwp = Wsc_fleet.Gwp
module Ab = Wsc_fleet.Ab_test
module Fault = Wsc_os.Fault
module Supervisor = Wsc_substrate.Supervisor
module Persist = Wsc_persist.Persist

let quick = ref false
let smoke = ref false
let scale s = if !quick then s /. 3.0 else s
let sec s = scale (s *. Units.sec)
let pct = Table.cell_pct
let spct = Table.cell_signed_pct
let f2 = Table.cell_f

let note fmt = Printf.printf (fmt ^^ "\n%!")

(* ------------------------------------------------------------------ *)
(* Shared simulation products, each computed at most once.             *)
(* ------------------------------------------------------------------ *)

(* One solo machine per characterization app (Figs. 5, 9 and friends). *)
let solo_cache : (string, Machine.job) Hashtbl.t = Hashtbl.create 16

let solo ?(config = Config.baseline) ?(duration = 60.0) profile =
  let key = profile.Profile.name ^ "/" ^ Config.describe config in
  match Hashtbl.find_opt solo_cache key with
  | Some job -> job
  | None ->
    let machine =
      Machine.create ~seed:42 ~config ~platform:Topology.default ~jobs:[ profile ] ()
    in
    Machine.run machine ~duration_ns:(sec 20.0) ~epoch_ns:Units.ms;
    List.iter (fun j -> Driver.reset_measurements j.Machine.driver) (Machine.jobs machine);
    Machine.run machine ~duration_ns:(sec duration) ~epoch_ns:Units.ms;
    let job = List.hd (Machine.jobs machine) in
    Hashtbl.replace solo_cache key job;
    job

(* The control fleet used by Figs. 3, 5, 6 and 15. *)
let fleet_jobs =
  lazy
    (let fleet = Fleet.create ~seed:7 ~num_machines:(if !quick then 8 else 16) () in
     let (_ : Machine.summary list) =
       Fleet.run fleet ~duration_ns:(sec 15.0) ~epoch_ns:Units.ms
     in
     List.iter (fun j -> Driver.reset_measurements j.Machine.driver) (Fleet.jobs fleet);
     let (_ : Machine.summary list) =
       Fleet.run fleet ~duration_ns:(sec 30.0) ~epoch_ns:Units.ms
     in
     Fleet.jobs fleet)

(* Span-lifecycle observatory for Figs. 13/16: a fleet-like job with
   periodic span-occupancy snapshots.  The paper's telemetry spans two
   weeks, so even "long-lived" objects die within the observation window;
   this profile compresses every lifetime into the simulated minute so the
   span return/censoring ratio matches that regime. *)
let span_study_profile =
  let exp_ms m = Dist.exponential ~mean:(m *. Units.ms) in
  {
    Apps.fleet with
    Profile.name = "span-study";
    Profile.threads =
      Wsc_workload.Threads.diurnal ~period_ns:(30.0 *. Units.sec) ~amplitude:0.75
        ~base:8.0 ~max_threads:16 ();
    Profile.size_drift_amplitude = 0.6;
    Profile.size_drift_period_ns = 30.0 *. Units.sec;
    Profile.lifetime_table =
      [
        ( 1024,
          Dist.mixture [ (0.5, exp_ms 0.3); (0.3, exp_ms 20.0); (0.2, exp_ms 2_000.0) ] );
        ( 262144,
          Dist.mixture [ (0.4, exp_ms 1.0); (0.4, exp_ms 100.0); (0.2, exp_ms 3_000.0) ] );
        (max_int, Dist.mixture [ (0.3, exp_ms 50.0); (0.7, exp_ms 5_000.0) ]);
      ];
  }

let span_observatory =
  lazy
    (let clock = Clock.create () in
     let topology = Topology.default in
     let backend =
       Backend.create ~config:Config.baseline
         ~span_snapshot_interval_ns:(1.0 *. Units.sec) ~topology ~clock ()
     in
     let sched = Wsc_os.Sched.spread topology ~first_cpu:0 ~cpus:16 ~domains:2 in
     let driver =
       Driver.create ~seed:42 ~profile:span_study_profile ~sched ~backend ~clock ()
     in
     Driver.run driver ~duration_ns:(sec 90.0) ~epoch_ns:Units.ms;
     Malloc.span_stats (Backend.tc_exn backend))

let ab_experiments =
  [
    ("heterogeneous per-CPU caches", Config.with_dynamic_per_cpu true Config.baseline);
    ("NUCA-aware transfer caches", Config.with_nuca_transfer_cache true Config.baseline);
    ("span prioritization", Config.with_span_prioritization true Config.baseline);
    ("lifetime-aware filler", Config.with_lifetime_aware_filler true Config.baseline);
    ("all four combined", Config.all_optimizations);
  ]

let ab_cache : (string, Ab.outcome) Hashtbl.t = Hashtbl.create 64

let ab_app experiment profile =
  let key = Config.describe experiment ^ "/" ^ profile.Profile.name in
  match Hashtbl.find_opt ab_cache key with
  | Some o -> o
  | None ->
    let o =
      Ab.run_app
        ~replicas:(if !quick then 1 else 2)
        ~warmup_ns:(sec 25.0) ~duration_ns:(sec 55.0) ~control:Config.baseline
        ~experiment profile
    in
    Hashtbl.replace ab_cache key o;
    o

let fleet_ab_cache : (string, Ab.fleet_outcome) Hashtbl.t = Hashtbl.create 8

let ab_fleet experiment =
  let key = Config.describe experiment in
  match Hashtbl.find_opt fleet_ab_cache key with
  | Some o -> o
  | None ->
    let o =
      Ab.run_fleet
        ~num_machines:(if !quick then 4 else 8)
        ~warmup_ns:(sec 20.0) ~duration_ns:(sec 40.0) ~control:Config.baseline
        ~experiment ()
    in
    Hashtbl.replace fleet_ab_cache key o;
    o

(* ------------------------------------------------------------------ *)
(* Fig. 3 — CDF of malloc cycles and allocated memory over binaries.   *)
(* ------------------------------------------------------------------ *)

let fig3 () =
  (* Fig. 3 needs population breadth, not depth: many machines sampling a
     long-tailed (Zipf 0.7) population of 400 binaries, run briefly. *)
  let fleet =
    Fleet.create ~seed:17
      ~num_machines:(if !quick then 16 else 48)
      ~jobs_per_machine:3 ~zipf_s:0.2
      ~population:(Array.init 400 (fun rank -> Apps.fleet_binary ~rank))
      ()
  in
  let (_ : Machine.summary list) =
    Fleet.run fleet ~duration_ns:(sec 6.0) ~epoch_ns:Units.ms
  in
  let jobs = Fleet.jobs fleet in
  let usage = Gwp.binary_usage jobs in
  let total_ns = List.fold_left (fun a u -> a +. u.Gwp.malloc_ns) 0.0 usage in
  let total_bytes = List.fold_left (fun a u -> a +. u.Gwp.allocated_bytes) 0.0 usage in
  let t =
    Table.create ~title:"Fig. 3 - fleet malloc cycles / allocated memory CDF over binaries"
      ~columns:[ "top binaries"; "% malloc cycles"; "% allocated memory" ]
  in
  let cum_ns = ref 0.0 and cum_bytes = ref 0.0 and rank = ref 0 in
  let checkpoints = [ 1; 2; 5; 10; 20; 30; 40; 50 ] in
  List.iter
    (fun u ->
      incr rank;
      cum_ns := !cum_ns +. u.Gwp.malloc_ns;
      cum_bytes := !cum_bytes +. u.Gwp.allocated_bytes;
      if List.mem !rank checkpoints then
        Table.add_row t
          [
            string_of_int !rank;
            pct (100.0 *. !cum_ns /. total_ns);
            pct (100.0 *. !cum_bytes /. total_bytes);
          ])
    usage;
  Table.print t;
  note "paper: the top 50 binaries cover ~50%% of malloc cycles and ~65%% of memory;";
  note "the fleet has %d distinct binaries in this run." (List.length usage)

(* ------------------------------------------------------------------ *)
(* Fig. 4 — allocation latency per cache tier.                         *)
(* ------------------------------------------------------------------ *)

let fig4 () =
  let job = solo Apps.fleet in
  let tel = Backend.telemetry job.Machine.backend in
  let total_hits =
    List.fold_left (fun a tier -> a + Telemetry.hits tel tier) 0 Cost_model.all_tiers
  in
  let t =
    Table.create ~title:"Fig. 4 - allocation latency by deepest tier hit"
      ~columns:[ "tier"; "latency (ns)"; "paper (ns)"; "share of allocations" ]
  in
  let paper = [ "3.1"; "illegible (25 assumed)"; "illegible (81.3 assumed)"; "137.0"; "12916.7" ] in
  List.iteri
    (fun i tier ->
      Table.add_row t
        [
          Cost_model.tier_name tier;
          f2 ~decimals:1 (Cost_model.tier_hit_ns tier);
          List.nth paper i;
          pct (100.0 *. float_of_int (Telemetry.hits tel tier) /. float_of_int total_hits);
        ])
    Cost_model.all_tiers;
  Table.print t;
  note "hitting deeper tiers is orders of magnitude slower; mmap dominates, which is";
  note "the paper's case for userspace caching.  Hit shares from a fleet-profile run."

(* ------------------------------------------------------------------ *)
(* Fig. 5 — malloc cycle share and fragmentation ratio per workload.   *)
(* ------------------------------------------------------------------ *)

let fig5_apps = [ Apps.spanner; Apps.monarch; Apps.bigtable; Apps.f1_query; Apps.disk ]

let fig5 () =
  let t =
    Table.create ~title:"Fig. 5 - malloc cycles (%) and fragmentation ratio (%)"
      ~columns:[ "workload"; "malloc cycles"; "frag total"; "frag external"; "frag internal" ]
  in
  let row name jobs =
    let malloc_pct = 100.0 *. Gwp.fleet_malloc_cycle_fraction jobs in
    let ext, internal = Gwp.fragmentation_ratio jobs in
    Table.add_row t
      [ name; pct malloc_pct; pct (100.0 *. (ext +. internal)); pct (100.0 *. ext);
        pct (100.0 *. internal) ]
  in
  row "fleet" (Lazy.force fleet_jobs);
  List.iter (fun p -> row p.Profile.name [ solo p ]) fig5_apps;
  row "spec2006" [ solo Apps.spec2006 ];
  Table.print t;
  note "paper: fleet 4.3%% malloc cycles and 22.2%% fragmentation (18.8 ext + 3.4 int);";
  note "top-5 apps 3.6-10.1%% cycles and 11.2-42.5%% fragmentation; SPEC near zero cycles."

(* ------------------------------------------------------------------ *)
(* Fig. 6 — CPU-cycle and fragmentation breakdowns.                    *)
(* ------------------------------------------------------------------ *)

let fig6 () =
  let jobs = Lazy.force fleet_jobs in
  let cb = Gwp.cycle_breakdown jobs in
  let t =
    Table.create ~title:"Fig. 6a - malloc CPU cycle breakdown (fleet)"
      ~columns:[ "component"; "share"; "paper" ]
  in
  Table.add_row t [ "CPUCache"; pct (100.0 *. cb.Gwp.cpu_cache); "53%" ];
  Table.add_row t [ "TransferCache"; pct (100.0 *. cb.Gwp.transfer_cache); "3%" ];
  Table.add_row t [ "CentralFreeList"; pct (100.0 *. cb.Gwp.central_free_list); "12%" ];
  Table.add_row t [ "PageHeap (incl. mmap)"; pct (100.0 *. cb.Gwp.pageheap); "3%" ];
  Table.add_row t [ "Sampled"; pct (100.0 *. cb.Gwp.sampled); "4%" ];
  Table.add_row t [ "Prefetch"; pct (100.0 *. cb.Gwp.prefetch); "16%" ];
  Table.add_row t [ "Other"; pct (100.0 *. cb.Gwp.other); "9%" ];
  Table.print t;
  let fb = Gwp.fragmentation_breakdown jobs in
  let t =
    Table.create ~title:"Fig. 6b - memory fragmentation breakdown (fleet)"
      ~columns:[ "component"; "share"; "paper" ]
  in
  Table.add_row t [ "CPUCache"; pct (100.0 *. fb.Gwp.fb_cpu_cache); "~3%" ];
  Table.add_row t [ "TransferCache"; pct (100.0 *. fb.Gwp.fb_transfer_cache); "~2%" ];
  Table.add_row t [ "CentralFreeList"; pct (100.0 *. fb.Gwp.fb_central_free_list); "29%" ];
  Table.add_row t [ "PageHeap"; pct (100.0 *. fb.Gwp.fb_pageheap); "51%" ];
  Table.add_row t [ "Internal"; pct (100.0 *. fb.Gwp.fb_internal); "15%" ];
  Table.print t

(* ------------------------------------------------------------------ *)
(* Fig. 7 — CDF of allocated objects by size.                          *)
(* ------------------------------------------------------------------ *)

let fig7 () =
  let job = solo Apps.fleet_characterization in
  let tel = Backend.telemetry job.Machine.backend in
  let count_h = Telemetry.size_histogram_count tel in
  let bytes_h = Telemetry.size_histogram_bytes tel in
  let t =
    Table.create ~title:"Fig. 7 - CDF of allocated objects by size (fleet)"
      ~columns:[ "size <="; "% of objects"; "% of memory" ]
  in
  List.iter
    (fun size ->
      Table.add_row t
        [
          Table.cell_bytes size;
          pct (100.0 *. Histogram.fraction_below count_h (float_of_int size));
          pct (100.0 *. Histogram.fraction_below bytes_h (float_of_int size));
        ])
    [ 32; 128; 1024; 8192; 65536; 262144; 1048576; 16777216; 1073741824 ];
  Table.print t;
  note "anchors: paper has <=1 KiB at 98%% of objects / 28%% of bytes; >8 KiB = 50%% of";
  note "bytes; >256 KiB (pageheap-direct) = 22%% of bytes.  measured: %s / %s; %s; %s"
    (pct (100.0 *. Histogram.fraction_below count_h 1024.0))
    (pct (100.0 *. Histogram.fraction_below bytes_h 1024.0))
    (pct (100.0 *. Histogram.fraction_above bytes_h 8192.0))
    (pct (100.0 *. Histogram.fraction_above bytes_h 262144.0))

(* ------------------------------------------------------------------ *)
(* Fig. 8 — object lifetime distribution by size, fleet vs SPEC.       *)
(* ------------------------------------------------------------------ *)

let fig8 () =
  let report name job =
    let tel = Backend.telemetry job.Machine.backend in
    let t =
      Table.create
        ~title:(Printf.sprintf "Fig. 8 - object lifetimes by size (%s)" name)
        ~columns:[ "size bin"; "< 1 ms"; "< 1 s"; "< 1 min"; ">= 1 min" ]
    in
    List.iter
      (fun (lo, hi, label) ->
        let frac bound = Telemetry.lifetime_fraction tel ~size_min:lo ~size_max:hi ~lifetime_below_ns:bound in
        let ms = frac Units.ms and s = frac Units.sec and m = frac Units.minute in
        if Telemetry.lifetime_fraction tel ~size_min:lo ~size_max:hi ~lifetime_below_ns:infinity > 0.0
        then
          Table.add_row t
            [ label; pct (100.0 *. ms); pct (100.0 *. s); pct (100.0 *. m);
              pct (100.0 *. (1.0 -. m)) ])
      [
        (1, 1024, "<= 1 KiB");
        (1025, 65536, "1-64 KiB");
        (65537, 1048576, "64 KiB - 1 MiB");
        (1048577, 67108864, "1-64 MiB");
        (67108865, max_int, "> 64 MiB");
      ];
    Table.print t
  in
  report "fleet" (solo Apps.fleet_characterization);
  report "spec2006" (solo Apps.spec2006);
  note "paper: fleet lifetimes are extremely diverse (46%% of sub-KiB objects die in";
  note "<1 ms, yet every bin has week-scale survivors); SPEC is bimodal (die instantly";
  note "or live for the whole run), making it unsuitable for allocator studies."

(* ------------------------------------------------------------------ *)
(* Fig. 9 — thread-count dynamics and per-vCPU miss skew.              *)
(* ------------------------------------------------------------------ *)

let fig9 () =
  let job = solo ~duration:90.0 Apps.search_middle_tier in
  let series = Driver.thread_series job.Machine.driver in
  let t =
    Table.create ~title:"Fig. 9a - worker threads of a middle-tier search service"
      ~columns:[ "sim time"; "active threads" ]
  in
  let n = List.length series in
  List.iteri
    (fun i (time, threads) ->
      if i mod (max 1 (n / 14)) = 0 then
        Table.add_row t [ Table.cell_duration time; string_of_int threads ])
    series;
  Table.print t;
  let counts = List.map snd series in
  let mn = List.fold_left min max_int counts and mx = List.fold_left max 0 counts in
  note "constant fluctuation: %d..%d threads (diurnal swing + noise + spikes)." mn mx;
  let misses = Telemetry.front_end_misses (Backend.telemetry job.Machine.backend) in
  let total = Array.fold_left ( + ) 0 misses in
  let t =
    Table.create ~title:"Fig. 9b - per-CPU cache miss share by vCPU id"
      ~columns:[ "vCPU id"; "% of all misses" ]
  in
  Array.iteri
    (fun vcpu m ->
      if m > 0 then
        Table.add_row t
          [ string_of_int vcpu; pct (100.0 *. float_of_int m /. float_of_int total) ])
    misses;
  Table.print t;
  note "paper: vCPU 0 suffers the most misses and higher-indexed vCPUs progressively";
  note "fewer - their statically-sized caches are used inefficiently."

(* ------------------------------------------------------------------ *)
(* A/B tables (Figs. 10/14, Tables 1/2, Fig. 17, Sec. 4.5).            *)
(* ------------------------------------------------------------------ *)

let fig10_apps = [ Apps.spanner; Apps.monarch; Apps.bigtable; Apps.f1_query; Apps.disk ]
let bench_apps = [ Apps.data_pipeline; Apps.image_processing; Apps.tensorflow ]

let fig10 () =
  let experiment = List.assoc "heterogeneous per-CPU caches" ab_experiments in
  let t =
    Table.create
      ~title:"Fig. 10 - memory reduction from heterogeneous (dynamically sized) per-CPU caches"
      ~columns:[ "workload"; "memory reduction"; "paper" ]
  in
  let fleet = (ab_fleet experiment).Ab.fleet in
  Table.add_row t [ "fleet"; pct (-.fleet.Ab.memory_change_pct); "1.94%" ];
  let paper = [ "0.58-2.45%"; "0.58-2.45%"; "0.58-2.45%"; "0.58-2.45%"; "0.58-2.45%";
                "2.66%"; "2.27%"; "2.08%" ] in
  List.iteri
    (fun i p ->
      let o = ab_app experiment p in
      Table.add_row t [ o.Ab.app; pct (-.o.Ab.memory_change_pct); List.nth paper i ])
    (fig10_apps @ bench_apps);
  Table.print t;
  note "redis omitted as in the paper: single-threaded, one per-CPU cache.";
  note "throughput stays flat (paper: \"no performance impact\"): fleet %+.2f%%."
    fleet.Ab.throughput_change_pct

let show_ab_table ~title ~with_tlb outcomes_with_paper =
  let columns =
    if with_tlb then
      [ "application"; "throughput"; "memory"; "CPI"; "dTLB walk before"; "dTLB walk after";
        "paper thr" ]
    else
      [ "application"; "throughput"; "memory"; "CPI"; "LLC MPKI before"; "LLC MPKI after";
        "paper thr" ]
  in
  let t = Table.create ~title ~columns in
  List.iter
    (fun ((o : Ab.outcome), paper_thr) ->
      let before, after =
        if with_tlb then (pct o.Ab.walk_before_pct, pct o.Ab.walk_after_pct)
        else (f2 o.Ab.mpki_before, f2 o.Ab.mpki_after)
      in
      Table.add_row t
        [
          o.Ab.app;
          spct o.Ab.throughput_change_pct;
          spct o.Ab.memory_change_pct;
          spct o.Ab.cpi_change_pct;
          before;
          after;
          paper_thr;
        ])
    outcomes_with_paper;
  Table.print t

let table1 () =
  let experiment = List.assoc "NUCA-aware transfer caches" ab_experiments in
  let fleet = (ab_fleet experiment).Ab.fleet in
  let rows =
    ((fleet, "+0.32%") :: List.map2 (fun p paper -> (ab_app experiment p, paper))
       (fig10_apps @ bench_apps)
       [ "+0.28%"; "+0.62%"; "+0.47%"; "+1.05%"; "+1.72%"; "+2.19%"; "+1.37%"; "+3.80%" ])
  in
  show_ab_table ~title:"Table 1 - NUCA-aware transfer caches (fleet A/B + benchmarks)"
    ~with_tlb:false rows;
  note "redis skipped as in the paper (single-threaded).  paper fleet: +0.32%% thr,";
  note "+0.10%% memory, LLC MPKI 2.52 -> 2.41; gains rise with remote-reuse traffic."

let fig11 () =
  let t =
    Table.create ~title:"Fig. 11 - cache-to-cache transfer latency on a chiplet platform"
      ~columns:[ "locality"; "latency (ns)" ]
  in
  Table.add_row t [ "intra-cache-domain"; f2 ~decimals:1 Latency.intra_domain_ns ];
  Table.add_row t [ "inter-cache-domain"; f2 ~decimals:1 Latency.inter_domain_ns ];
  Table.add_row t [ "inter-socket"; f2 ~decimals:1 Latency.inter_socket_ns ];
  Table.print t;
  note "paper: inter-domain transfers cost 2.07x intra-domain (measured %.2fx here)."
    (Latency.inter_domain_ns /. Latency.intra_domain_ns)

let fig13 () =
  (* Direct central-free-list study of the paper's telemetry relationship:
     16 B allocations arrive in on/off demand phases; 2% of objects are
     long-lived ("a single long-lived object on a span may disallow the
     central free list to return that span").  Span occupancy is observed
     periodically, and each observation is scored by whether the span went
     back to the pageheap within the window. *)
  let stats = Span_stats.create () in
  let vm = Wsc_os.Vm.create () in
  let pageheap = Wsc_tcmalloc.Pageheap.create ~config:Config.baseline vm in
  let cfl =
    Wsc_tcmalloc.Central_free_list.create ~config:Config.baseline ~span_stats:stats
      pageheap
  in
  let cls = Option.get (Size_class.of_size 16) in
  let rng = Rng.create 42 in
  (* Long-lived objects arrive in temporal bursts (initialization of a data
     structure pins a couple of spans), not iid across every span. *)
  let pin_burst = ref 0 in
  let pending : int Binheap.t = Binheap.create () in
  let dt = 10.0 *. Units.ms in
  let on_len = 9.0 *. Units.sec and cycle_len = 24.0 *. Units.sec in
  let duration = sec 300.0 in
  let now = ref 0.0 in
  let next_snapshot = ref 0.0 in
  while !now < duration do
    now := !now +. dt;
    let due = Binheap.pop_until pending !now in
    if due <> [] then
      Wsc_tcmalloc.Central_free_list.return_objects cfl ~cls
        ~addrs:(List.map snd due) ~now:!now;
    let in_on_phase = Float.rem !now cycle_len < on_len in
    if in_on_phase then begin
      let addrs, _ =
        Wsc_tcmalloc.Central_free_list.remove_objects cfl ~cls ~n:80 ~now:!now
      in
      List.iter
        (fun a ->
          let pinned =
            if !pin_burst > 0 then begin
              decr pin_burst;
              true
            end
            else if Rng.bernoulli rng 0.0001 then begin
              pin_burst := 150;
              true
            end
            else false
          in
          let lifetime =
            if pinned then 1e18
            else Dist.sample (Dist.exponential ~mean:(1.0 *. Units.sec)) rng
          in
          Binheap.push pending (!now +. lifetime) a)
        addrs
    end;
    if !now >= !next_snapshot then begin
      next_snapshot := !now +. (0.5 *. Units.sec);
      Wsc_tcmalloc.Central_free_list.snapshot cfl ~now:!now
    end
  done;
  let rates =
    Span_stats.return_rate_by_live_allocations stats ~cls
      ~window_ns:(25.0 *. Units.sec) ~bucket:64
  in
  let t =
    Table.create
      ~title:"Fig. 13 - span return rate vs live allocations (16 B class, 512 objects/span)"
      ~columns:[ "live allocations"; "return rate"; "observations" ]
  in
  List.iter
    (fun (bucket, rate, n) ->
      Table.add_row t
        [ Printf.sprintf "%d-%d" bucket (bucket + 63); pct (100.0 *. rate); string_of_int n ])
    rates;
  Table.print t;
  let pairs = List.map (fun (b, r, _) -> (float_of_int b, r)) rates in
  if List.length pairs >= 2 then begin
    note "paper: the return probability falls monotonically with live allocations";
    note "(measured Spearman rho = %.2f; strongly negative expected)." (Stats.spearman pairs)
  end

let fig14 () =
  let experiment = List.assoc "span prioritization" ab_experiments in
  let t =
    Table.create ~title:"Fig. 14 - memory reduction with span prioritization (L=8 lists)"
      ~columns:[ "workload"; "memory reduction"; "paper" ]
  in
  let fleet = (ab_fleet experiment).Ab.fleet in
  Table.add_row t [ "fleet"; pct (-.fleet.Ab.memory_change_pct); "1.41%" ];
  let paper = [ "0.34-2.54%"; "2.76%"; "0.34-2.54%"; "0.34-2.54%"; "0.34-2.54%";
                "0.61-1.36%"; "0.61-1.36%"; "0.61-1.36%" ] in
  List.iteri
    (fun i p ->
      let o = ab_app experiment p in
      Table.add_row t [ o.Ab.app; pct (-.o.Ab.memory_change_pct); List.nth paper i ])
    (fig10_apps @ bench_apps);
  Table.print t;
  note "paper: productivity metrics unchanged; fleet throughput here: %+.2f%%."
    fleet.Ab.throughput_change_pct

let fig15 () =
  let jobs = Lazy.force fleet_jobs in
  let sum f = List.fold_left (fun a j -> a + f (Malloc.pageheap (Backend.tc_exn j.Machine.backend))) 0 jobs in
  let open Wsc_tcmalloc.Pageheap in
  let filler_used = sum (fun ph -> (filler_stats ph).in_use_bytes) in
  let region_used = sum (fun ph -> (region_stats ph).in_use_bytes) in
  let cache_used = sum (fun ph -> (cache_stats ph).in_use_bytes) in
  let filler_frag = sum (fun ph -> (filler_stats ph).fragmented_bytes) in
  let region_frag = sum (fun ph -> (region_stats ph).fragmented_bytes) in
  let cache_frag = sum (fun ph -> (cache_stats ph).fragmented_bytes) in
  let used_total = float_of_int (filler_used + region_used + cache_used) in
  let frag_total = float_of_int (filler_frag + region_frag + cache_frag) in
  let t =
    Table.create ~title:"Fig. 15 - pageheap in-use memory and fragmentation by component"
      ~columns:[ "component"; "% of in-use"; "% of fragmentation"; "paper" ]
  in
  let row name used frag paper =
    Table.add_row t
      [
        name;
        pct (100.0 *. float_of_int used /. Float.max 1.0 used_total);
        pct (100.0 *. float_of_int frag /. Float.max 1.0 frag_total);
        paper;
      ]
  in
  row "HugeFiller" filler_used filler_frag "83.6% in-use / 94.4% frag";
  row "HugeRegion" region_used region_frag "";
  row "HugeCache" cache_used cache_frag "";
  Table.print t;
  note "paper: the hugepage filler holds most in-use memory and nearly all pageheap";
  note "fragmentation, which is why Sec. 4.4 redesigns the filler."

let fig16 () =
  let stats = Lazy.force span_observatory in
  let rates = Span_stats.return_rate_by_class stats in
  let t =
    Table.create ~title:"Fig. 16 - span capacity vs span return rate"
      ~columns:[ "size class"; "capacity (objects/span)"; "return rate"; "spans" ]
  in
  List.iter
    (fun (cls, rate, created) ->
      if created >= 10 then
        Table.add_row t
          [
            Table.cell_bytes (Size_class.size cls);
            string_of_int (Size_class.capacity cls);
            pct (100.0 *. rate);
            string_of_int created;
          ])
    rates;
  Table.print t;
  note "Spearman correlation (capacity vs return rate): %.2f   (paper: -0.75)"
    (Span_stats.capacity_return_correlation stats)

let table2 () =
  let experiment = List.assoc "lifetime-aware filler" ab_experiments in
  let fleet = (ab_fleet experiment).Ab.fleet in
  let rows =
    ((fleet, "+1.02%") :: List.map2 (fun p paper -> (ab_app experiment p, paper))
       (fig10_apps @ [ Apps.redis ] @ bench_apps)
       [ "+0.38%"; "+3.30%"; "+2.83%"; "+1.40%"; "+6.29%"; "+1.05%"; "+1.43%"; "+2.15%";
         "+3.91%" ])
  in
  show_ab_table
    ~title:"Table 2 - lifetime-aware hugepage filler (C=16), dTLB walk cycles before/after"
    ~with_tlb:true rows;
  note "paper fleet: +1.02%% thr, -0.82%% memory, dTLB walk 9.16%% -> 6.22%%."

let fig17 () =
  let experiment = List.assoc "lifetime-aware filler" ab_experiments in
  let fleet = (ab_fleet experiment).Ab.fleet in
  let t =
    Table.create ~title:"Fig. 17 - hugepage coverage and relative dTLB misses (fleet)"
      ~columns:[ "metric"; "baseline"; "lifetime-aware"; "paper" ]
  in
  Table.add_row t
    [
      "hugepage coverage";
      pct (100.0 *. fleet.Ab.coverage_before);
      pct (100.0 *. fleet.Ab.coverage_after);
      "54.4% -> 56.2%";
    ];
  let relative =
    Tlb_model.relative_misses ~coverage:fleet.Ab.coverage_after
    /. Tlb_model.relative_misses ~coverage:fleet.Ab.coverage_before
  in
  Table.add_row t [ "relative dTLB misses"; "1.000"; f2 ~decimals:3 relative; "1.0 -> 0.839" ];
  Table.print t

let combined () =
  let experiment = List.assoc "all four combined" ab_experiments in
  let fleet_o = (ab_fleet experiment).Ab.fleet in
  let t =
    Table.create ~title:"Sec. 4.5 - all four optimizations combined"
      ~columns:[ "workload"; "throughput"; "memory"; "paper" ]
  in
  Table.add_row t
    [ "fleet"; spct fleet_o.Ab.throughput_change_pct; spct fleet_o.Ab.memory_change_pct;
      "+1.4% thr / -3.4% mem" ];
  List.iter
    (fun p ->
      let o = ab_app experiment p in
      Table.add_row t
        [ o.Ab.app; spct o.Ab.throughput_change_pct; spct o.Ab.memory_change_pct;
          "0.7-8.1% thr / 1.0-6.3% mem" ])
    fig10_apps;
  Table.print t

(* ------------------------------------------------------------------ *)
(* Ablations of the paper's design constants (Secs. 4.3/4.4).          *)
(* ------------------------------------------------------------------ *)

let ablation () =
  (* Sec. 4.3: "our experiments show that L = 8 lists are sufficient to
     differentiate spans".  Sweep the list count with prioritization on. *)
  let run_l l =
    let experiment =
      { (Config.with_span_prioritization true Config.baseline) with Config.cfl_lists = l }
    in
    Ab.run_app ~replicas:(if !quick then 1 else 2) ~warmup_ns:(sec 25.0)
      ~duration_ns:(sec 55.0) ~control:Config.baseline ~experiment Apps.monarch
  in
  let t =
    Table.create ~title:"Ablation (Sec. 4.3) - occupancy list count L, span prioritization"
      ~columns:[ "L"; "memory reduction (monarch)" ]
  in
  List.iter
    (fun l ->
      let o = run_l l in
      Table.add_row t [ string_of_int l; pct (-.o.Ab.memory_change_pct) ])
    [ 2; 4; 8; 16 ];
  Table.print t;
  note "paper: L = 8 suffices; more lists add no further differentiation.";
  (* Sec. 4.4: "our experiments reveal C = 16 as an acceptable threshold". *)
  let run_c c =
    let experiment =
      {
        (Config.with_lifetime_aware_filler true Config.baseline) with
        Config.lifetime_capacity_threshold = c;
      }
    in
    Ab.run_app ~replicas:(if !quick then 1 else 2) ~warmup_ns:(sec 25.0)
      ~duration_ns:(sec 55.0) ~control:Config.baseline ~experiment Apps.monarch
  in
  let t =
    Table.create
      ~title:"Ablation (Sec. 4.4) - span-capacity threshold C, lifetime-aware filler"
      ~columns:[ "C"; "coverage before"; "coverage after"; "throughput" ]
  in
  List.iter
    (fun c ->
      let o = run_c c in
      Table.add_row t
        [
          string_of_int c;
          pct (100.0 *. o.Ab.coverage_before);
          pct (100.0 *. o.Ab.coverage_after);
          spct o.Ab.throughput_change_pct;
        ])
    [ 4; 16; 64 ];
  Table.print t;
  note "paper: C = 16 separates short-lived (high-return, low-capacity) spans.";
  (* Footnote 2: per-thread caches (the retired design) strand memory when
     worker threads go idle; per-CPU caches bound the footprint by cores. *)
  let run_front_end config =
    let machine =
      Machine.create ~seed:13 ~config ~platform:Topology.default
        ~jobs:[ Apps.search_middle_tier ] ()
    in
    Machine.run machine ~duration_ns:(sec 60.0) ~epoch_ns:Units.ms;
    let job = List.hd (Machine.jobs machine) in
    let stats = Backend.heap_stats job.Machine.backend in
    (Driver.avg_rss_bytes job.Machine.driver, stats.Malloc.front_end_cached_bytes)
  in
  let rss_cpu, fe_cpu = run_front_end Config.baseline in
  let rss_thr, fe_thr = run_front_end Config.legacy_per_thread in
  let t =
    Table.create
      ~title:"Ablation (footnote 2) - per-thread vs per-CPU front-end, fluctuating threads"
      ~columns:[ "front-end"; "avg RSS"; "front-end cached" ]
  in
  Table.add_row t
    [ "per-thread (legacy)"; Table.cell_bytes (int_of_float rss_thr); Table.cell_bytes fe_thr ];
  Table.add_row t
    [ "per-CPU (modern)"; Table.cell_bytes (int_of_float rss_cpu); Table.cell_bytes fe_cpu ];
  Table.print t;
  note "paper (footnote 2): per-thread caches strand memory when threads idle and";
  note "scale poorly with thousands of threads, which is why TCMalloc moved to";
  note "per-CPU caches (making \"thread-caching malloc\" a misnomer)."

(* ------------------------------------------------------------------ *)
(* Restartable sequences: front-end hit rate and restart overhead      *)
(* under CPU churn (off / paper-default / extreme).                    *)
(* ------------------------------------------------------------------ *)

let rseq_bench () =
  let preempt_default = Wsc_os.Rseq.default_preempt_prob in
  let arms =
    [
      ("churn-off", None, preempt_default);
      ("paper-default", Some (3.0 *. Units.sec), preempt_default);
      ("extreme", Some (0.25 *. Units.sec), 0.02);
    ]
  in
  let t =
    Table.create
      ~title:"Rseq - front-end hit rate and restart overhead under CPU churn"
      ~columns:
        [ "churn"; "front-end hit rate"; "restarts"; "fallbacks"; "restart overhead";
          "stranded reclaim" ]
  in
  let results =
    List.map
      (fun (name, churn_period, preempt_prob) ->
        let faults =
          Option.map
            (fun period ->
              { Wsc_os.Fault.no_faults with Wsc_os.Fault.seed = 42;
                cpu_churn_period_ns = period })
            churn_period
        in
        let rseq =
          { Wsc_os.Rseq.seed = 42; preempt_prob;
            max_restarts = Config.baseline.Config.rseq_max_restarts }
        in
        let machine =
          Machine.create ~seed:42 ?faults ~rseq ~platform:Topology.default
            ~jobs:[ Apps.search_middle_tier ] ()
        in
        Machine.run machine ~duration_ns:(sec 30.0) ~epoch_ns:Units.ms;
        let job = List.hd (Machine.jobs machine) in
        let tel = Backend.telemetry job.Machine.backend in
        let hits = Telemetry.hits tel Cost_model.Per_cpu_cache in
        let total =
          List.fold_left (fun a tier -> a + Telemetry.hits tel tier) 0 Cost_model.all_tiers
        in
        let hit_rate = float_of_int hits /. float_of_int (max 1 total) in
        let restarts = Telemetry.rseq_restarts tel in
        let overhead_ns =
          float_of_int restarts *. Cost_model.tier_hit_ns Cost_model.Per_cpu_cache
        in
        let stranded = Telemetry.stranded_reclaim_bytes tel in
        Table.add_row t
          [
            name;
            pct (100.0 *. hit_rate);
            string_of_int restarts;
            string_of_int (Telemetry.rseq_fallbacks tel);
            Printf.sprintf "%.1f us" (overhead_ns /. 1e3);
            Table.cell_bytes stranded;
          ];
        (name, preempt_prob, churn_period, hit_rate, restarts,
         Telemetry.rseq_fallbacks tel, overhead_ns, stranded))
      arms
  in
  Table.print t;
  note "restart overhead charges one extra fast-path run (%.1f ns, Fig. 4) per restart;"
    (Cost_model.tier_hit_ns Cost_model.Per_cpu_cache);
  note "churn also converts stranded front-end bytes into transfer-cache reclaim.";
  (* Machine-readable trajectory point for longitudinal tracking. *)
  let oc = open_out "BENCH_rseq.json" in
  Printf.fprintf oc "{\n  \"benchmark\": \"rseq\",\n  \"arms\": [\n";
  List.iteri
    (fun i (name, preempt, churn, hit_rate, restarts, fallbacks, overhead_ns, stranded) ->
      Printf.fprintf oc
        "    {\"name\": %S, \"preempt_prob\": %g, \"churn_period_s\": %s, \
         \"front_end_hit_rate\": %.6f, \"restarts\": %d, \"fallbacks\": %d, \
         \"restart_overhead_ns\": %.1f, \"stranded_reclaim_bytes\": %d}%s\n"
        name preempt
        (match churn with None -> "null" | Some p -> Printf.sprintf "%g" (p /. Units.sec))
        hit_rate restarts fallbacks overhead_ns stranded
        (if i = List.length results - 1 then "" else ","))
    results;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  note "wrote BENCH_rseq.json"

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks of the simulator's hot paths.              *)
(* ------------------------------------------------------------------ *)

let microbench () =
  let open Bechamel in
  let topology = Topology.uniprocessor in
  let clock = Clock.create () in
  let malloc = Malloc.create ~topology ~clock () in
  let small =
    Test.make ~name:"sim-malloc/free 64B (fast path)"
      (Staged.stage (fun () ->
           let a = Malloc.malloc malloc ~cpu:0 ~size:64 in
           Malloc.free malloc ~cpu:0 a ~size:64))
  in
  let cross =
    Test.make ~name:"sim-malloc cpu0/free cpu1 128B"
      (Staged.stage (fun () ->
           let a = Malloc.malloc malloc ~cpu:0 ~size:128 in
           Malloc.free malloc ~cpu:1 a ~size:128))
  in
  let large =
    Test.make ~name:"sim-malloc/free 4MiB (pageheap)"
      (Staged.stage (fun () ->
           let a = Malloc.malloc malloc ~cpu:0 ~size:(4 * Units.mib) in
           Malloc.free malloc ~cpu:0 a ~size:(4 * Units.mib)))
  in
  let rng = Rng.create 1 in
  let sampling =
    Test.make ~name:"profile size+lifetime sample"
      (Staged.stage (fun () ->
           let size = Profile.sample_size Apps.fleet rng in
           ignore (Profile.sample_lifetime Apps.fleet rng ~size)))
  in
  let tests = [ small; cross; large; sampling ] in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let t =
    Table.create ~title:"Bechamel - simulator hot-path throughput"
      ~columns:[ "operation"; "ns/op" ]
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let analyzed = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] -> Table.add_row t [ name; f2 ~decimals:1 est ]
          | _ -> Table.add_row t [ name; "n/a" ])
        analyzed)
    tests;
  Table.print t;
  note "these are wall-clock costs of the *simulator*, not modeled allocator latencies";
  note "(the modeled latencies are the Fig. 4 table)."

(* ------------------------------------------------------------------ *)
(* simperf — simulator performance regression harness.                 *)
(*                                                                     *)
(* Three measurements: single-core steady-state event throughput of a  *)
(* fleet-profile machine, the jobs=1/2/4 A/B wall-clock speedup curve  *)
(* (whose outcomes double as a determinism check), and a Bechamel      *)
(* estimate of the malloc/free fast path.  The full run records them   *)
(* in BENCH_simperf.json; `--smoke` runs a shortened version and fails *)
(* if events/sec regressed more than 20% against the committed file.   *)
(* ------------------------------------------------------------------ *)

let simperf_json = "BENCH_simperf.json"

(* Extract a numeric field from the committed JSON without a parser dep:
   find `"key":` and Scanf the number after it. *)
let json_number ~key text =
  let needle = Printf.sprintf "\"%s\":" key in
  let nlen = String.length needle and len = String.length text in
  let rec find i =
    if i + nlen > len then None
    else if String.sub text i nlen = needle then
      let j = ref (i + nlen) in
      while !j < len && text.[!j] = ' ' do incr j done;
      let k = ref !j in
      while
        !k < len
        && (match text.[!k] with '0' .. '9' | '.' | '-' | '+' | 'e' | 'E' -> true | _ -> false)
      do
        incr k
      done;
      float_of_string_opt (String.sub text !j (!k - !j))
    else find (i + 1)
  in
  find 0

(* Host CPU model, for honest context next to any speedup/throughput claim
   in the committed JSON.  Linux-specific best effort; "unknown" elsewhere. *)
let host_model () =
  try
    let ic = open_in "/proc/cpuinfo" in
    let rec scan () =
      match input_line ic with
      | line ->
        (match String.index_opt line ':' with
        | Some i when String.length line >= 10 && String.sub line 0 10 = "model name" ->
          String.trim (String.sub line (i + 1) (String.length line - i - 1))
        | _ -> scan ())
      | exception End_of_file -> "unknown"
    in
    let model = scan () in
    close_in ic;
    model
  with Sys_error _ -> "unknown"

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function '"' -> Buffer.add_string b "\\\"" | '\\' -> Buffer.add_string b "\\\\" | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let simperf () =
  (* (a) Bechamel estimate of the simulated malloc/free fast path — taken
     first, while the simulator heap is still small enough that GC noise
     does not pollute the wall clock. *)
  let fast_path_ns =
    let open Bechamel in
    let clock = Clock.create () in
    let malloc = Malloc.create ~topology:Topology.uniprocessor ~clock () in
    let test =
      Test.make ~name:"fast-path"
        (Staged.stage (fun () ->
             let a = Malloc.malloc malloc ~cpu:0 ~size:64 in
             Malloc.free malloc ~cpu:0 a ~size:64))
    in
    let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
    let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
    let results = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] test in
    let analyzed = Analyze.all ols Toolkit.Instance.monotonic_clock results in
    Hashtbl.fold
      (fun _ ols_result acc ->
        match Analyze.OLS.estimates ols_result with Some [ est ] -> est | _ -> acc)
      analyzed nan
  in
  note "malloc/free fast path: %.1f ns/op (Bechamel)" fast_path_ns;
  (* (b) single-core event throughput, fleet profile, steady state. *)
  let timed_s = if !smoke then 20.0 else 120.0 in
  let throughput () =
    let machine =
      Machine.create ~seed:42 ~platform:Topology.default ~jobs:[ Apps.fleet ] ()
    in
    Machine.run machine ~duration_ns:(5.0 *. Units.sec) ~epoch_ns:Units.ms;
    let job = List.hd (Machine.jobs machine) in
    let tel = Backend.telemetry job.Machine.backend in
    let e0 = Telemetry.alloc_count tel + Telemetry.free_count tel in
    let g0 = Gc.quick_stat () in
    let t0 = Unix.gettimeofday () in
    Machine.run machine ~duration_ns:(timed_s *. Units.sec) ~epoch_ns:Units.ms;
    let wall = Unix.gettimeofday () -. t0 in
    let g1 = Gc.quick_stat () in
    let events = Telemetry.alloc_count tel + Telemetry.free_count tel - e0 in
    ( float_of_int events /. wall,
      (g1.Gc.minor_words -. g0.Gc.minor_words) /. float_of_int events )
  in
  (* Best of three (two under --smoke): the metric is the machine's
     capability, and the minimum wall-clock run is the least disturbed. *)
  let runs = List.init (if !smoke then 2 else 3) (fun _ -> throughput ()) in
  let events_per_sec = List.fold_left (fun a (e, _) -> Float.max a e) 0.0 runs in
  let words_per_event = List.fold_left (fun a (_, w) -> Float.min a w) infinity runs in
  note "single-core: %.0f events/sec, %.1f minor words/event (best of %d)" events_per_sec
    words_per_event (List.length runs);
  (* (c) A/B wall-clock speedup curve.  On a single-core host the curve is
     fiction — Parallel.map bypasses the pool there and every arm runs the
     same sequential code — so it is skipped with a note instead of
     committing a flat "speedup" that only measures scheduler churn. *)
  let host_cores = Parallel.host_cores () in
  let curve =
    if host_cores = 1 then begin
      note
        "host has 1 core: skipping the jobs=1/2/4 speedup curve (Parallel.map \
         bypasses the domain pool; all arms would run identically).";
      []
    end
    else begin
      (* Warm the pool at the widest point first: it is sized once, at
         first parallel use. *)
      ignore (Parallel.map ~jobs:4 (fun x -> x) [| 0; 1; 2; 3 |]);
      let warmup_ns = if !smoke then 4.0 *. Units.sec else 10.0 *. Units.sec in
      let duration_ns = if !smoke then 8.0 *. Units.sec else 30.0 *. Units.sec in
      let arm jobs =
        let t0 = Unix.gettimeofday () in
        let o =
          Ab.run_app ~jobs ~replicas:2 ~warmup_ns ~duration_ns ~control:Config.baseline
            ~experiment:Config.all_optimizations Apps.fleet
        in
        (Unix.gettimeofday () -. t0, o)
      in
      let curve = List.map (fun jobs -> (jobs, arm jobs)) [ 1; 2; 4 ] in
      let wall1, o1 = List.assoc 1 curve in
      let t =
        Table.create ~title:"simperf - A/B speedup over domains (4 arm machines)"
          ~columns:[ "jobs"; "wall (s)"; "speedup"; "outcome identical to jobs=1" ]
      in
      List.iter
        (fun (jobs, (wall, o)) ->
          Table.add_row t
            [
              string_of_int jobs;
              f2 ~decimals:2 wall;
              Printf.sprintf "%.2fx" (wall1 /. wall);
              (if o = o1 then "yes" else "NO");
            ])
        curve;
      Table.print t;
      List.iter
        (fun (jobs, (_, o)) ->
          if o <> o1 then begin
            Printf.eprintf "simperf: jobs=%d A/B outcome differs from jobs=1 reference\n"
              jobs;
            exit 1
          end)
        curve;
      note "host has %d core(s)." host_cores;
      curve
    end
  in
  if !smoke then begin
    (* Regression gates vs the committed trajectory point: a wall-clock
       floor (events/sec >= 80% of committed — generous because 1-core CI
       hosts are noisy) and an allocation ceiling (minor words/event <=
       1.25x committed — the stable metric that catches a re-boxed hot
       path even when the clock is too noisy to). *)
    let committed_text =
      if Sys.file_exists simperf_json then begin
        let ic = open_in simperf_json in
        let text = really_input_string ic (in_channel_length ic) in
        close_in ic;
        Some text
      end
      else None
    in
    match committed_text with
    | None -> note "no committed %s; skipping the regression gates." simperf_json
    | Some text ->
      (match json_number ~key:"events_per_sec" text with
      | None -> note "committed %s has no events_per_sec; skipping floor." simperf_json
      | Some committed ->
        let ratio = events_per_sec /. committed in
        note "committed events/sec: %.0f; measured %.0f (%.0f%%)" committed events_per_sec
          (100.0 *. ratio);
        if ratio < 0.8 then begin
          Printf.eprintf
            "simperf: events/sec regressed more than 20%% vs committed %s (%.0f -> %.0f)\n"
            simperf_json committed events_per_sec;
          exit 1
        end);
      (match json_number ~key:"minor_words_per_event" text with
      | None -> note "committed %s has no minor_words_per_event; skipping ceiling." simperf_json
      | Some committed_words ->
        note "committed minor words/event: %.1f; measured %.1f" committed_words
          words_per_event;
        if words_per_event > (committed_words *. 1.25) +. 0.5 then begin
          Printf.eprintf
            "simperf: minor words/event grew more than 25%% vs committed %s (%.1f -> %.1f)\n"
            simperf_json committed_words words_per_event;
          exit 1
        end)
  end
  else begin
    let oc = open_out simperf_json in
    Printf.fprintf oc
      "{\n\
      \  \"benchmark\": \"simperf\",\n\
      \  \"host_cores\": %d,\n\
      \  \"host_model\": \"%s\",\n\
      \  \"events_per_sec\": %.0f,\n\
      \  \"minor_words_per_event\": %.1f,\n\
      \  \"fast_path_ns\": %.1f,\n"
      host_cores (json_escape (host_model ())) events_per_sec words_per_event fast_path_ns;
    (match curve with
    | [] ->
      Printf.fprintf oc
        "  \"speedup\": [],\n\
        \  \"speedup_note\": \"skipped: single-core host (domain pool bypassed)\"\n"
    | curve ->
      let wall1, _ = List.assoc 1 curve in
      Printf.fprintf oc "  \"speedup\": [\n";
      let last = List.length curve - 1 in
      List.iteri
        (fun i (jobs, (wall, _)) ->
          Printf.fprintf oc "    {\"jobs\": %d, \"wall_s\": %.2f, \"speedup\": %.2f}%s\n"
            jobs wall (wall1 /. wall)
            (if i = last then "" else ","))
        curve;
      Printf.fprintf oc "  ]\n");
    Printf.fprintf oc "}\n";
    close_out oc;
    note "wrote %s" simperf_json
  end

(* ------------------------------------------------------------------ *)
(* tracecodec — streaming trace codec benchmark and regression gate.   *)
(*                                                                     *)
(* Records a fleet-profile driver run through the wsc_trace pipeline,  *)
(* then measures what the binary format promises: size per event vs    *)
(* the text v1 format (the >= 5x compression claim is a hard gate) and *)
(* streaming decode / re-encode throughput.  The full run records the  *)
(* numbers in BENCH_tracecodec.json; `--smoke` uses a shorter trace    *)
(* and fails on a compression or >30% throughput regression.           *)
(* ------------------------------------------------------------------ *)

let tracecodec_json = "BENCH_tracecodec.json"

let tracecodec () =
  let module Writer = Wsc_trace.Writer in
  let module Reader = Wsc_trace.Reader in
  let module Recorder = Wsc_trace.Recorder in
  let bin = Filename.temp_file "wsc_bench" ".wtrace" in
  let txt = Filename.temp_file "wsc_bench" ".wtrace.txt" in
  let bin2 = Filename.temp_file "wsc_bench" ".wtrace2" in
  Fun.protect
    ~finally:(fun () -> List.iter Sys.remove [ bin; txt; bin2 ])
    (fun () ->
      (* A real recorded run (threads, retirements, cross-CPU frees), not
         a synthetic best case for the delta encoder. *)
      let duration_ns = (if !smoke then 3.0 else 10.0) *. Units.sec in
      let w = Writer.to_file bin in
      ignore (Recorder.record_app ~seed:42 ~duration_ns ~writer:w Apps.fleet);
      let events = Writer.events_written w in
      Writer.close w;
      let binary_bytes = (Unix.stat bin).Unix.st_size in
      (* Text v1 size of the same stream, written the same way
         the text v1 codec does, without materializing it. *)
      let oc = open_out txt in
      Reader.with_file bin (fun r ->
          Reader.iter r (fun ev ->
              match ev with
              | Wsc_workload.Trace.Alloc { id; size; cpu } ->
                Printf.fprintf oc "a %d %d %d\n" id size cpu
              | Wsc_workload.Trace.Free { id; cpu } -> Printf.fprintf oc "f %d %d\n" id cpu
              | Wsc_workload.Trace.Advance { dt_ns } -> Printf.fprintf oc "t %.17g\n" dt_ns
              | Wsc_workload.Trace.Retire { cpu; flush } ->
                Printf.fprintf oc "r %d %d\n" cpu (if flush then 1 else 0)));
      close_out oc;
      let text_bytes = (Unix.stat txt).Unix.st_size in
      let ratio = float_of_int text_bytes /. float_of_int binary_bytes in
      (* Streaming decode and decode+re-encode throughput, best of N. *)
      let best f =
        List.fold_left
          (fun acc () ->
            let t0 = Unix.gettimeofday () in
            f ();
            Float.max acc (float_of_int events /. (Unix.gettimeofday () -. t0)))
          0.0
          (List.init (if !smoke then 2 else 3) (fun _ -> ()))
      in
      let decode_eps =
        best (fun () -> Reader.with_file bin (fun r -> Reader.iter r ignore))
      in
      let reencode_eps =
        best (fun () ->
            Reader.with_file bin (fun r ->
                Writer.with_file bin2 (fun w -> ignore (Reader.copy_into r w))))
      in
      let t =
        Table.create ~title:"tracecodec - binary trace format"
          ~columns:[ "metric"; "value" ]
      in
      Table.add_row t [ "events"; string_of_int events ];
      Table.add_row t [ "binary size"; Units.bytes_to_string binary_bytes ];
      Table.add_row t [ "text v1 size"; Units.bytes_to_string text_bytes ];
      Table.add_row t
        [ "bytes/event (binary)";
          f2 ~decimals:2 (float_of_int binary_bytes /. float_of_int events) ];
      Table.add_row t
        [ "bytes/event (text)";
          f2 ~decimals:2 (float_of_int text_bytes /. float_of_int events) ];
      Table.add_row t [ "compression ratio"; Printf.sprintf "%.2fx" ratio ];
      Table.add_row t [ "decode events/sec"; Printf.sprintf "%.2fM" (decode_eps /. 1e6) ];
      Table.add_row t
        [ "decode+re-encode events/sec"; Printf.sprintf "%.2fM" (reencode_eps /. 1e6) ];
      Table.print t;
      if ratio < 5.0 then begin
        Printf.eprintf "tracecodec: compression ratio %.2fx is below the 5x floor\n" ratio;
        exit 1
      end;
      if !smoke then begin
        match
          if Sys.file_exists tracecodec_json then begin
            let ic = open_in tracecodec_json in
            let text = really_input_string ic (in_channel_length ic) in
            close_in ic;
            json_number ~key:"decode_events_per_sec" text
          end
          else None
        with
        | None -> note "no committed %s; skipping the regression gate." tracecodec_json
        | Some committed ->
          let r = decode_eps /. committed in
          note "committed decode events/sec: %.0f; measured %.0f (%.0f%%)" committed
            decode_eps (100.0 *. r);
          if r < 0.7 then begin
            Printf.eprintf
              "tracecodec: decode throughput regressed more than 30%% vs committed %s \
               (%.0f -> %.0f)\n"
              tracecodec_json committed decode_eps;
            exit 1
          end
      end
      else begin
        let oc = open_out tracecodec_json in
        Printf.fprintf oc
          "{\n\
          \  \"benchmark\": \"tracecodec\",\n\
          \  \"events\": %d,\n\
          \  \"binary_bytes\": %d,\n\
          \  \"text_bytes\": %d,\n\
          \  \"compression_ratio\": %.2f,\n\
          \  \"decode_events_per_sec\": %.0f,\n\
          \  \"reencode_events_per_sec\": %.0f\n\
           }\n"
          events binary_bytes text_bytes ratio decode_eps reencode_eps;
        close_out oc;
        note "wrote %s" tracecodec_json
      end)

(* ------------------------------------------------------------------ *)
(* longhorizon — checkpoint-chained long-window span experiments.      *)
(*                                                                     *)
(* EXPERIMENTS.md gaps 3/6: the paper observes spans over two weeks;   *)
(* cold-started runs here stop at 60-150 s.  This experiment chains    *)
(* warm-state snapshots (lib/persist) into a >= 10x longer simulated   *)
(* window: between segments the simulation is saved to disk, dropped,  *)
(* and restored, so peak memory is one warm simulation plus one        *)
(* snapshot regardless of total window length, and every seam          *)
(* exercises the bit-identical restore path.  Re-measured: Fig. 13     *)
(* (span return rate vs live allocations, Spearman rho), Fig. 16       *)
(* (capacity vs return rate), Fig. 14 (span-prioritization memory      *)
(* delta).  `--smoke` runs short segments and hard-fails unless the    *)
(* chained run is bit-identical to an uninterrupted one.               *)
(* ------------------------------------------------------------------ *)

let longhorizon_json = "BENCH_longhorizon.json"

let longhorizon () =
  let segment_s = if !smoke then 3.0 else 60.0 in
  let segments = if !smoke then 2 else 15 in
  let fig14_segments = if !smoke then 2 else 10 in
  let fig14_warmup_s = if !smoke then 2.0 else 20.0 in
  let observatory_s = segment_s *. float_of_int segments in
  let tmp = Filename.temp_file "wsc_longhorizon" ".wsnap" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists tmp then Sys.remove tmp)
  @@ fun () ->
  (* (a) Span observatory (the Figs. 13/16 instrument), chained at the
     driver level. *)
  let make_observatory () =
    let clock = Clock.create () in
    let topology = Topology.default in
    let backend =
      Backend.create ~config:Config.baseline
        ~span_snapshot_interval_ns:(1.0 *. Units.sec) ~topology ~clock ()
    in
    let sched = Wsc_os.Sched.spread topology ~first_cpu:0 ~cpus:16 ~domains:2 in
    Driver.create ~seed:42 ~profile:span_study_profile ~sched ~backend ~clock ()
  in
  let digest d =
    let m = Driver.backend d in
    let tel = Backend.telemetry m in
    ( Backend.heap_stats m,
      Telemetry.alloc_count tel,
      Telemetry.free_count tel,
      Telemetry.total_malloc_ns tel,
      Driver.requests_completed d,
      Driver.live_objects d )
  in
  let chained = ref (make_observatory ()) in
  let snapshot_bytes = ref 0 in
  for _seg = 1 to segments do
    Driver.run !chained ~duration_ns:(segment_s *. Units.sec) ~epoch_ns:Units.ms;
    Persist.save_driver !chained ~path:tmp;
    snapshot_bytes :=
      max !snapshot_bytes (Persist.info ~path:tmp).Persist.file_bytes;
    chained := Persist.load_driver ~path:tmp
  done;
  note "observatory: %.0f s window as %d chained segments (snapshot <= %.1f MiB)"
    observatory_s segments
    (float_of_int !snapshot_bytes /. 1024.0 /. 1024.0);
  if !smoke then begin
    (* Bit-identity gate: the chained window must be indistinguishable
       from one uninterrupted run of the same length. *)
    let reference = make_observatory () in
    Driver.run reference ~duration_ns:(observatory_s *. Units.sec) ~epoch_ns:Units.ms;
    if digest reference <> digest !chained then begin
      Printf.eprintf
        "longhorizon: chained run diverged from the uninterrupted reference\n";
      exit 1
    end;
    note "bit-identity: chained run == uninterrupted %.0f s reference" observatory_s
  end;
  let stats = Malloc.span_stats (Backend.tc_exn (Driver.backend !chained)) in
  (* Fig. 13 over the long window.  Two choices matter here.  The class:
     it needs several objects per span, or there are too few occupancy
     levels to correlate over (the most-created classes hold 1-5 objects);
     take the most-created class with capacity >= 8.  The return window:
     over a long steady-state run a 25 s window saturates — nearly every
     span returns within it regardless of occupancy, erasing the gradient
     — so use 5 s, which at this profile's compressed lifetime scale is
     the discriminating analog of the paper's drought-sized windows. *)
  let cls_best, created_best =
    List.fold_left
      (fun (bc, bn) (cls, _, created) ->
        if created > bn && Size_class.capacity cls >= 8 then (cls, created) else (bc, bn))
      (-1, 0)
      (Span_stats.return_rate_by_class stats)
  in
  if cls_best < 0 then failwith "longhorizon: no class with capacity >= 8 populated";
  let rec rates_with_bucket bucket =
    let rates =
      Span_stats.return_rate_by_live_allocations stats ~cls:cls_best
        ~window_ns:(5.0 *. Units.sec) ~bucket
    in
    if List.length rates >= 2 || bucket <= 1 then rates
    else rates_with_bucket (bucket / 2)
  in
  let rates = rates_with_bucket (max 1 (Size_class.capacity cls_best / 16)) in
  let fig13_rho =
    if List.length rates >= 2 then
      Stats.spearman (List.map (fun (b, r, _) -> (float_of_int b, r)) rates)
    else 0.0
  in
  let fig16_rho = Span_stats.capacity_return_correlation stats in
  note "fig13 (long window): rho = %.2f over %d live-allocation buckets (%s class, %d spans)"
    fig13_rho (List.length rates)
    (Units.bytes_to_string (Size_class.size cls_best))
    created_best;
  note "fig16 (long window): capacity-vs-return-rate rho = %.2f (paper: -0.75)" fig16_rho;
  (* (b) Fig. 14: span prioritization's memory saving.  A paired fleet A/B
     (same seed, so identical machines/platforms/binaries in both arms —
     only the allocator config differs), each arm chained through on-disk
     fleet snapshots after a shared warmup.  A fleet rather than a single
     job because the paper's 1.41% is a fleet aggregate; one job is a
     single noisy draw. *)
  let fig14_machines = if !smoke then 2 else 6 in
  let fig14_arm config =
    let fleet =
      ref
        (Fleet.create ~seed:42 ~num_machines:fig14_machines ~num_binaries:8
           ~jobs_per_machine:2 ~config ())
    in
    let (_ : Machine.summary list) =
      Fleet.run !fleet ~duration_ns:(fig14_warmup_s *. Units.sec) ~epoch_ns:Units.ms
    in
    List.iter (fun j -> Driver.reset_measurements j.Machine.driver) (Fleet.jobs !fleet);
    for _seg = 1 to fig14_segments do
      let (_ : Machine.summary list) =
        Fleet.run !fleet ~duration_ns:(segment_s *. Units.sec) ~epoch_ns:Units.ms
      in
      Persist.save_fleet !fleet ~path:tmp;
      fleet := Persist.load_fleet ~path:tmp
    done;
    List.fold_left
      (fun acc j -> acc +. Driver.avg_rss_bytes j.Machine.driver)
      0.0 (Fleet.jobs !fleet)
  in
  let base_rss = fig14_arm Config.baseline in
  let span_rss = fig14_arm (Config.with_span_prioritization true Config.baseline) in
  let fig14_delta_pct = 100.0 *. (base_rss -. span_rss) /. base_rss in
  note "fig14 (%.0f s window): span prioritization saves %.2f%% of avg RSS (paper fleet: 1.41%%)"
    (segment_s *. float_of_int fig14_segments)
    fig14_delta_pct;
  if not !smoke then begin
    let oc = open_out longhorizon_json in
    Printf.fprintf oc
      "{\n\
      \  \"benchmark\": \"longhorizon\",\n\
      \  \"observatory_window_s\": %.0f,\n\
      \  \"segments\": %d,\n\
      \  \"max_snapshot_bytes\": %d,\n\
      \  \"fig13_spearman_rho\": %.3f,\n\
      \  \"fig16_capacity_rho\": %.3f,\n\
      \  \"fig14_window_s\": %.0f,\n\
      \  \"fig14_memory_delta_pct\": %.3f\n\
       }\n"
      observatory_s segments !snapshot_bytes fig13_rho fig16_rho
      (segment_s *. float_of_int fig14_segments)
      fig14_delta_pct;
    close_out oc;
    note "wrote %s" longhorizon_json
  end

(* ------------------------------------------------------------------ *)
(* fleetcampaign — crash-tolerant campaign throughput + memory gate.   *)
(*                                                                     *)
(* The full run drives a 600-machine chaos campaign (supervised        *)
(* retries, sharded streaming aggregation) at the default domain count *)
(* and records machines/sec, machine-epochs/sec and the OCaml heap     *)
(* high-water mark in BENCH_fleetcampaign.json.  `--smoke` first       *)
(* proves the robustness contract on a small campaign — killed after   *)
(* one shard, resumed, aggregate bit-identical to the fault-free       *)
(* single-domain reference, zero quarantines — then fails on a >30%    *)
(* machine-epochs/sec regression against the committed file.           *)
(* ------------------------------------------------------------------ *)

let fleetcampaign_json = "BENCH_fleetcampaign.json"

let fleetcampaign () =
  let machines = if !smoke then 100 else 600 in
  let duration_s = 0.5 in
  (* The same per-machine duration in smoke and full runs keeps
     machine-epochs/sec comparable: per-machine fixed costs amortize over
     the same epoch count, so only the machine count shrinks in smoke. *)
  let spec =
    {
      Campaign.default_spec with
      Campaign.seed = 17;
      machines;
      duration_ns = duration_s *. Units.sec;
      chaos =
        { Fault.chaos_seed = 5; crash_prob = 0.2; hang_prob = 0.1; corrupt_prob = 0.1 };
      (* 0.4 failure probability per attempt and 26 attempts: quarantine
         needs 26 straight failures, so coverage stays total and the
         chaos aggregate must equal the fault-free one. *)
      policy = { Supervisor.default_policy with Supervisor.max_attempts = 26 };
      shard_size = 25;
    }
  in
  if !smoke then begin
    (* Correctness first, on a smaller/shorter campaign: fault-free jobs=1
       reference vs a chaos campaign killed after one shard and resumed on
       four domains. *)
    let cspec =
      { spec with Campaign.machines = 32; duration_ns = 0.3 *. Units.sec;
        shard_size = 12 }
    in
    let reference =
      Campaign.run ~jobs:1 { cspec with Campaign.chaos = Fault.no_chaos }
    in
    let captured = ref None in
    let first =
      Campaign.run ~jobs:4
        ~on_shard:(fun ~shard:_ ck ->
          captured := Some (Marshal.from_string (Marshal.to_string ck []) 0))
        ~max_shards:1 cspec
    in
    let resumed = Campaign.run ~jobs:4 ?resume:!captured cspec in
    if first.Campaign.r_finished then begin
      Printf.eprintf "fleetcampaign: kill after one shard did not pause the campaign\n";
      exit 1
    end;
    if resumed.Campaign.r_quarantined <> [] then begin
      Printf.eprintf "fleetcampaign: %d machine(s) quarantined at the bench seed\n"
        (List.length resumed.Campaign.r_quarantined);
      exit 1
    end;
    if
      Campaign.render_aggregate resumed.Campaign.r_aggregate
      <> Campaign.render_aggregate reference.Campaign.r_aggregate
    then begin
      Printf.eprintf
        "fleetcampaign: killed+resumed chaos aggregate differs from the fault-free \
         jobs=1 reference\n";
      exit 1
    end;
    note
      "kill/resume bit-identity holds: %d machines, %d attempts (%d crashes, %d \
       stragglers, %d corrupt), 100%% coverage"
      cspec.Campaign.machines resumed.Campaign.r_stats.Campaign.st_attempts
      resumed.Campaign.r_stats.Campaign.st_crashes
      resumed.Campaign.r_stats.Campaign.st_stragglers
      resumed.Campaign.r_stats.Campaign.st_corruptions
  end;
  (* Throughput: one uninterrupted chaos campaign at the default domain
     count.  machine-epochs/sec (completed machines x epochs per machine
     over wall time) is duration-invariant, so the smoke gate can compare
     its short campaign against the committed full-size number. *)
  let t0 = Unix.gettimeofday () in
  let r = Campaign.run spec in
  let wall = Unix.gettimeofday () -. t0 in
  let heap_mb =
    float_of_int ((Gc.quick_stat ()).Gc.top_heap_words * (Sys.word_size / 8))
    /. 1048576.0
  in
  if r.Campaign.r_quarantined <> [] then begin
    Printf.eprintf "fleetcampaign: %d machine(s) quarantined at the bench seed\n"
      (List.length r.Campaign.r_quarantined);
    exit 1
  end;
  let epochs_per_machine = spec.Campaign.duration_ns /. spec.Campaign.epoch_ns in
  let machines_per_sec = float_of_int machines /. wall in
  let machine_epochs_per_sec = machines_per_sec *. epochs_per_machine in
  note
    "%d machines (%d attempts) in %.1f s: %.1f machines/sec, %.0f machine-epochs/sec"
    machines r.Campaign.r_stats.Campaign.st_attempts wall machines_per_sec
    machine_epochs_per_sec;
  note "heap high-water mark: %.1f MB (supervisor state is O(shard = %d))" heap_mb
    spec.Campaign.shard_size;
  if !smoke then begin
    match
      if Sys.file_exists fleetcampaign_json then begin
        let ic = open_in fleetcampaign_json in
        let text = really_input_string ic (in_channel_length ic) in
        close_in ic;
        json_number ~key:"machine_epochs_per_sec" text
      end
      else None
    with
    | None -> note "no committed %s; skipping the regression gate." fleetcampaign_json
    | Some committed ->
      let ratio = machine_epochs_per_sec /. committed in
      note "committed machine-epochs/sec: %.0f; measured %.0f (%.0f%%)" committed
        machine_epochs_per_sec (100.0 *. ratio);
      (* The smoke campaign is ~1/6 of the committed width, so domain
         spawn and warmup amortize worse and it measures ~70-75% of the
         committed rate on an idle machine; 0.5 leaves CI headroom while
         still catching a 2x slowdown. *)
      if ratio < 0.5 then begin
        Printf.eprintf
          "fleetcampaign: machine-epochs/sec fell below half of committed %s \
           (%.0f -> %.0f)\n"
          fleetcampaign_json committed machine_epochs_per_sec;
        exit 1
      end
  end
  else begin
    let oc = open_out fleetcampaign_json in
    Printf.fprintf oc
      "{\n\
      \  \"benchmark\": \"fleetcampaign\",\n\
      \  \"machines\": %d,\n\
      \  \"duration_s\": %.2f,\n\
      \  \"attempts\": %d,\n\
      \  \"crashes\": %d,\n\
      \  \"stragglers\": %d,\n\
      \  \"corrupt_results\": %d,\n\
      \  \"quarantined\": %d,\n\
      \  \"machines_per_sec\": %.2f,\n\
      \  \"machine_epochs_per_sec\": %.0f,\n\
      \  \"peak_heap_mb\": %.1f\n\
       }\n"
      machines duration_s r.Campaign.r_stats.Campaign.st_attempts
      r.Campaign.r_stats.Campaign.st_crashes r.Campaign.r_stats.Campaign.st_stragglers
      r.Campaign.r_stats.Campaign.st_corruptions
      (List.length r.Campaign.r_quarantined)
      machines_per_sec machine_epochs_per_sec heap_mb;
    close_out oc;
    note "wrote %s" fleetcampaign_json
  end

(* ------------------------------------------------------------------ *)
(* salvage — storage chaos + degraded-mode recovery.                   *)
(*                                                                     *)
(* Writes one trace corpus through the Wsc_os.Storage fault shim at a  *)
(* sweep of bit-flip rates, then measures what `trace repair` +        *)
(* `replay --salvage` get back: recovery fraction, loss accounting,    *)
(* and salvage-scan throughput vs the strict reader (resync overhead). *)
(* Hard gates (smoke and full): a clean trace round-trips              *)
(* byte-identically through repair; every repaired trace satisfies the *)
(* strict reader; recovery at flip rate 1e-6 is >= 99%; a campaign     *)
(* shard with a damaged primary summary region repairs bit-identically *)
(* via the v2 trailer; and scrub + resume of a corrupted campaign      *)
(* directory reproduces the fault-free aggregate.                      *)
(* ------------------------------------------------------------------ *)

let salvage_json = "BENCH_salvage.json"

let salvage () =
  let module Writer = Wsc_trace.Writer in
  let module Reader = Wsc_trace.Reader in
  let module Salvage = Wsc_trace.Salvage in
  let module Replay = Wsc_trace.Replay in
  let module Storage = Wsc_os.Storage in
  let module Event = Wsc_workload.Trace in
  let dir = Filename.temp_file "wsc_salvage" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let rec rm_rf p =
    if Sys.is_directory p then begin
      Array.iter (fun f -> rm_rf (Filename.concat p f)) (Sys.readdir p);
      Unix.rmdir p
    end
    else Sys.remove p
  in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let path name = Filename.concat dir name in
  let file_bytes p =
    let ic = open_in_bin p in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let fail fmt = Printf.ksprintf (fun m -> Printf.eprintf "salvage: %s\n" m; exit 1) fmt in
  (* -- Trace corpus, fault-free reference. ------------------------- *)
  let duration_ns = (if !smoke then 4.0 else 30.0) *. Units.sec in
  let emit w =
    Event.synthesize_into ~seed:11 ~profile:Apps.monarch ~duration_ns (Writer.add w)
  in
  let clean = path "clean.wtrace" in
  let events =
    let w = Writer.to_file clean in
    emit w;
    let n = Writer.events_written w in
    Writer.close w;
    n
  in
  let clean_bytes = (Unix.stat clean).Unix.st_size in
  let repaired_clean = path "clean.repaired" in
  let rep0 = Salvage.repair ~src:clean ~dst:repaired_clean () in
  if not (Salvage.clean rep0) then fail "clean trace scanned as damaged";
  if file_bytes clean <> file_bytes repaired_clean then
    fail "clean trace did not round-trip byte-identically through repair";
  let strict_eps =
    let t0 = Unix.gettimeofday () in
    Reader.with_file clean (fun r -> Reader.iter r ignore);
    float_of_int events /. (Unix.gettimeofday () -. t0)
  in
  (* -- Flip-rate sweep through the storage chaos shim. -------------- *)
  let rates = [ 1e-7; 1e-6; 1e-5; 1e-4 ] in
  let arms =
    List.map
      (fun rate ->
        let st =
          Storage.create
            ~faults:
              {
                Wsc_os.Fault.no_storage_faults with
                Wsc_os.Fault.storage_seed = 23;
                flip_rate = rate;
              }
            ()
        in
        let damaged = path (Printf.sprintf "flips-%g.wtrace" rate) in
        let w = Writer.to_file ~storage:st damaged in
        emit w;
        Writer.close w;
        let repaired = path (Printf.sprintf "flips-%g.repaired" rate) in
        let t0 = Unix.gettimeofday () in
        let rep = Salvage.repair ~src:damaged ~dst:repaired () in
        let scan_eps = float_of_int events /. (Unix.gettimeofday () -. t0) in
        (* Degraded-mode guarantee: repair output always satisfies the
           strict reader, whatever the damage. *)
        let s = Reader.verify repaired in
        if s.Reader.events <> rep.Salvage.events_recovered then
          fail "repaired trace re-reads %d events, salvage reported %d" s.Reader.events
            rep.Salvage.events_recovered;
        let recovery = float_of_int rep.Salvage.events_recovered /. float_of_int events in
        (rate, Storage.flips st, rep, recovery, scan_eps))
      rates
  in
  let t =
    Table.create ~title:"salvage - recovery vs write-path flip rate"
      ~columns:
        [ "flip rate"; "flips"; "recovered"; "lost"; "dropped"; "recovery"; "scan Mev/s" ]
  in
  List.iter
    (fun (rate, flips, rep, recovery, scan_eps) ->
      Table.add_row t
        [
          Printf.sprintf "%g" rate;
          string_of_int flips;
          string_of_int rep.Salvage.events_recovered;
          string_of_int rep.Salvage.events_lost;
          string_of_int rep.Salvage.events_dropped;
          pct (100.0 *. recovery);
          f2 ~decimals:2 (scan_eps /. 1e6);
        ])
    arms;
  Table.print t;
  note "corpus: %d events, %s; strict decode %.2f Mev/s" events
    (Units.bytes_to_string clean_bytes)
    (strict_eps /. 1e6);
  let recovery_at target =
    let _, _, _, recovery, _ = List.find (fun (r, _, _, _, _) -> r = target) arms in
    recovery
  in
  if recovery_at 1e-6 < 0.99 then
    fail "recovery at flip rate 1e-6 is %.4f, below the 0.99 floor" (recovery_at 1e-6);
  (* Degraded replay of the 1e-6 arm: must not raise and must agree with
     the repair scan on what was recovered. *)
  let _, _, rep_1e6, _, _ =
    List.find (fun (r, _, _, _, _) -> r = 1e-6) arms
  in
  let res, rep_replay = Replay.run_salvage (path "flips-1e-06.wtrace") in
  if rep_replay.Salvage.events_recovered <> rep_1e6.Salvage.events_recovered then
    fail "replay --salvage recovered %d events, repair recovered %d"
      rep_replay.Salvage.events_recovered rep_1e6.Salvage.events_recovered;
  note "degraded replay at 1e-6: %d allocs, %d frees, peak RSS %s" res.Replay.allocations
    res.Replay.frees
    (Units.bytes_to_string res.Replay.peak_rss_bytes);
  (* -- Crash arm: torn final write + lost tail. ---------------------- *)
  let crash_st =
    Storage.create
      ~faults:
        {
          Wsc_os.Fault.no_storage_faults with
          Wsc_os.Fault.storage_seed = 29;
          torn_write_rate = 0.002;
          truncate_rate = 0.5;
        }
      ()
  in
  let torn = path "torn.wtrace" in
  let w = Writer.to_file ~storage:crash_st torn in
  emit w;
  Writer.close w;
  if Storage.torn_writes crash_st + Storage.truncations crash_st = 0 then
    fail "crash arm drew no torn writes or truncations at seed 29";
  let torn_rep = Salvage.scan torn in
  if Salvage.clean torn_rep then fail "torn trace scanned as clean";
  if not torn_rep.Salvage.missing_eos then
    fail "torn trace still carries an end-of-stream marker";
  note "crash arm: %s" (Salvage.describe torn_rep);
  (* -- Snapshot self-healing + campaign scrub. ----------------------- *)
  let spec =
    {
      Campaign.default_spec with
      Campaign.seed = 7;
      machines = 18;
      duration_ns = 0.3 *. Units.sec;
      shard_size = 6;
    }
  in
  let camp = path "camp" in
  let reference = Persist.run_campaign ~resume_dir:camp spec in
  let reference_agg = Campaign.render_aggregate reference.Campaign.r_aggregate in
  (* A shard with a damaged primary summary region must audit as
     salvageable and repair bit-identically from the v2 trailer. *)
  let shard = Persist.campaign_shard_path ~dir:camp 1 in
  let pristine = file_bytes shard in
  let dmg = path "shard.dmg" in
  let oc = open_out_bin dmg in
  String.iteri
    (fun i c -> output_char oc (if i = 46 then Char.chr (Char.code c lxor 0xff) else c))
    pristine;
  close_out oc;
  let a = Persist.audit ~path:dmg in
  if a.Persist.a_intact then fail "damaged shard audits as intact";
  if not a.Persist.a_salvageable then fail "damaged shard audits as unrecoverable";
  let fixed = path "shard.fixed" in
  let (_ : Persist.audit) = Persist.repair ~src:dmg ~dst:fixed () in
  if file_bytes fixed <> pristine then
    fail "snapshot repair of a damaged summary region is not bit-identical";
  note "snapshot repair: damaged byte 46 of %s rebuilt bit-identically"
    (Filename.basename shard);
  (* Corrupt the newest shard mid-state, scrub (quarantines it), resume:
     the aggregate must match the fault-free reference. *)
  let shards = (spec.Campaign.machines + spec.Campaign.shard_size - 1) / spec.Campaign.shard_size in
  let last = Persist.campaign_shard_path ~dir:camp (shards - 1) in
  let data = file_bytes last in
  let oc = open_out_bin last in
  String.iteri
    (fun i c ->
      output_char oc
        (if i = String.length data / 2 then Char.chr (Char.code c lxor 0xff) else c))
    data;
  close_out oc;
  let scrub = Persist.scrub_campaign_dir ~dir:camp in
  (match scrub.Persist.sr_best with
  | Some (best, _) when best = shards - 2 -> ()
  | Some (best, _) -> fail "scrub picked shard %d, expected %d" best (shards - 2)
  | None -> fail "scrub found no usable checkpoint");
  if List.length scrub.Persist.sr_quarantined <> 1 then
    fail "scrub quarantined %d file(s), expected exactly the corrupted shard"
      (List.length scrub.Persist.sr_quarantined);
  let resumed = Persist.run_campaign ~resume_dir:camp spec in
  if Campaign.render_aggregate resumed.Campaign.r_aggregate <> reference_agg then
    fail "scrub + resume aggregate differs from the fault-free reference";
  note "campaign scrub: shard %d quarantined, resume from shard %d matches the \
        fault-free aggregate"
    (shards - 1) (shards - 2);
  let _, flips_1e6, _, _, scan_eps_1e6 =
    List.find (fun (r, _, _, _, _) -> r = 1e-6) arms
  in
  if !smoke then begin
    match
      if Sys.file_exists salvage_json then begin
        let ic = open_in salvage_json in
        let text = really_input_string ic (in_channel_length ic) in
        close_in ic;
        json_number ~key:"scan_events_per_sec_1e6" text
      end
      else None
    with
    | None -> note "no committed %s; skipping the regression gate." salvage_json
    | Some committed ->
      let r = scan_eps_1e6 /. committed in
      note "committed salvage-scan events/sec: %.0f; measured %.0f (%.0f%%)" committed
        scan_eps_1e6 (100.0 *. r);
      if r < 0.4 then begin
        Printf.eprintf
          "salvage: scan throughput fell below 40%% of committed %s (%.0f -> %.0f)\n"
          salvage_json committed scan_eps_1e6;
        exit 1
      end
  end
  else begin
    let oc = open_out salvage_json in
    Printf.fprintf oc
      "{\n\
      \  \"benchmark\": \"salvage\",\n\
      \  \"events\": %d,\n\
      \  \"trace_bytes\": %d,\n\
      \  \"recovery_1e7\": %.6f,\n\
      \  \"recovery_1e6\": %.6f,\n\
      \  \"recovery_1e5\": %.6f,\n\
      \  \"recovery_1e4\": %.6f,\n\
      \  \"flips_1e6\": %d,\n\
      \  \"scan_events_per_sec_1e6\": %.0f,\n\
      \  \"strict_events_per_sec\": %.0f,\n\
      \  \"resync_overhead\": %.3f\n\
       }\n"
      events clean_bytes (recovery_at 1e-7) (recovery_at 1e-6) (recovery_at 1e-5)
      (recovery_at 1e-4) flips_1e6 scan_eps_1e6 strict_eps
      (strict_eps /. scan_eps_1e6);
    close_out oc;
    note "wrote %s" salvage_json
  end

(* ------------------------------------------------------------------ *)
(* arena — cross-allocator shoot-out.                                  *)
(* ------------------------------------------------------------------ *)
(* Every backend (tcmalloc, rpmalloc, jemalloc) runs the same four     *)
(* pinned workloads: a workload-zoo machine, a cross-CPU               *)
(* producer/consumer flood, Fig. 7 size-mix churn, and                 *)
(* memory-pressure survival.  All counter/byte cells are               *)
(* bit-deterministic, so the smoke gate is an exact match against the  *)
(* committed BENCH_arena.json rather than a throughput ratio; the      *)
(* wall-clock throughput column is informational.                      *)

module Arena = Wsc_fleet.Arena

let arena_json = "BENCH_arena.json"

let arena_bench () =
  let report = Arena.run ~seed:42 () in
  Arena.pp_table Format.std_formatter report;
  Format.pp_print_flush Format.std_formatter ();
  let dead = List.filter (fun c -> not c.Arena.survived) report.Arena.cells in
  List.iter
    (fun (c : Arena.cell) ->
      Printf.eprintf "arena: %s/%s did not survive (audit or limit failure)\n"
        (Config.backend_name c.Arena.cell_backend)
        (Arena.scenario_name c.Arena.cell_scenario))
    dead;
  if dead <> [] then exit 1;
  if !smoke then begin
    let committed =
      if Sys.file_exists arena_json then begin
        let ic = open_in_bin arena_json in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> Some (really_input_string ic (in_channel_length ic)))
      end
      else None
    in
    match committed with
    | None -> note "no committed %s; skipping the determinism gate." arena_json
    | Some text -> (
      match Arena.check_committed ~committed:text report with
      | [] -> note "all deterministic cells match committed %s" arena_json
      | msgs ->
        List.iter (fun m -> Printf.eprintf "arena: %s\n" m) msgs;
        exit 1)
  end
  else begin
    let oc = open_out arena_json in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc (Arena.to_json report));
    note "wrote %s" arena_json
  end

(* ------------------------------------------------------------------ *)
(* tune — config autotuner over deterministic trace replay.            *)
(* ------------------------------------------------------------------ *)
(* Runs the default evolutionary search against the committed pinned   *)
(* trace, then sweeps the transfer-cache L and filler-threshold C      *)
(* knobs across the Sec. 4 plateau.  Every search/baseline/front/sweep *)
(* line is bit-deterministic, so the smoke gate is an exact line-match *)
(* against the committed BENCH_tune.json plus the dominance acceptance *)
(* gate; wall-clock is informational.                                  *)

module Tuner = Wsc_tune.Tune
module Tspace = Wsc_tune.Space
module Tpareto = Wsc_tune.Pareto

let tune_json = "BENCH_tune.json"
let tune_trace = "bench/tune_pinned.wtrace"

let tune_gene name =
  let rec go i =
    if i >= Tspace.num_genes then begin
      Printf.eprintf "tune: no gene named %S\n" name;
      exit 1
    end
    else if Tspace.gene_name i = name then i
    else go (i + 1)
  in
  go 0

let tune_bench () =
  let module Replay = Wsc_trace.Replay in
  if not (Sys.file_exists tune_trace) then begin
    Printf.eprintf "tune: pinned trace %s not found (run from the repo root)\n"
      tune_trace;
    exit 1
  end;
  let events = Replay.preload tune_trace in
  let spec = Tuner.default_spec in
  let t0 = Unix.gettimeofday () in
  let report = Tuner.run ~events spec in
  (* L/C plateau sweeps: one knob swept with the owning optimization
     switched on, everything else pinned at the paper default. *)
  let backend = spec.Tuner.sp_backend in
  let with_gene name v base =
    let g = Array.copy base in
    g.(tune_gene name) <- v;
    g
  in
  let sweeps =
    [
      ( "cfl_lists",
        Tuner.sweep_gene ~backend ~gene:(tune_gene "cfl_lists")
          ~base:(with_gene "span_prioritization" 1 Tspace.baseline)
          events );
      ( "lifetime_threshold",
        Tuner.sweep_gene ~backend
          ~gene:(tune_gene "lifetime_threshold")
          ~base:(with_gene "lifetime_filler" 1 Tspace.baseline)
          events );
    ]
  in
  let wall_s = Unix.gettimeofday () -. t0 in
  Tuner.pp_front Format.std_formatter report;
  Format.pp_print_flush Format.std_formatter ();
  List.iter
    (fun (name, points) ->
      let t =
        Table.create
          ~title:(Printf.sprintf "sweep - %s (optimization on, rest at default)" name)
          ~columns:[ name; "peak RSS"; "alloc CPU ms" ]
      in
      List.iter
        (fun (label, (e : Tpareto.entry)) ->
          Table.add_row t
            [
              label;
              Units.bytes_to_string e.Tpareto.e_rss;
              f2 ~decimals:3 (e.Tpareto.e_ns /. 1e6);
            ])
        points;
      Table.print t)
    sweeps;
  if not report.Tuner.rp_finished then begin
    Printf.eprintf "tune: search stopped before exhausting its budget\n";
    exit 1
  end;
  if not report.Tuner.rp_dominates then begin
    Printf.eprintf
      "tune: best candidate does not strictly dominate the paper default on the \
       pinned trace\n";
    exit 1
  end;
  if !smoke then begin
    let committed =
      if Sys.file_exists tune_json then begin
        let ic = open_in_bin tune_json in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> Some (really_input_string ic (in_channel_length ic)))
      end
      else None
    in
    match committed with
    | None -> note "no committed %s; skipping the determinism gate." tune_json
    | Some text -> (
      match Tuner.check_committed ~sweeps ~committed:text report with
      | [] -> note "all deterministic lines match committed %s" tune_json
      | msgs ->
        List.iter (fun m -> Printf.eprintf "tune: %s\n" m) msgs;
        exit 1)
  end
  else begin
    let oc = open_out tune_json in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc (Tuner.to_json ~wall_s ~sweeps report));
    note "wrote %s" tune_json
  end

(* ------------------------------------------------------------------ *)
(* Driver.                                                             *)
(* ------------------------------------------------------------------ *)

let experiments =
  [
    (* microbench first: the simulator heap is still small, so OCaml GC
       noise does not pollute the wall-clock measurements. *)
    ("microbench", microbench);
    ("fig3", fig3); ("fig4", fig4); ("fig5", fig5); ("fig6", fig6); ("fig7", fig7);
    ("fig8", fig8); ("fig9", fig9); ("fig10", fig10); ("fig11", fig11);
    ("table1", table1); ("fig13", fig13); ("fig14", fig14); ("fig15", fig15);
    ("fig16", fig16); ("table2", table2); ("fig17", fig17); ("combined", combined);
    ("ablation", ablation); ("rseq", rseq_bench); ("simperf", simperf);
    ("tracecodec", tracecodec); ("longhorizon", longhorizon);
    ("fleetcampaign", fleetcampaign); ("salvage", salvage); ("arena", arena_bench);
    ("tune", tune_bench);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let args = List.filter (fun a -> if a = "--quick" then (quick := true; false) else true) args in
  let args = List.filter (fun a -> if a = "--smoke" then (smoke := true; false) else true) args in
  (* --jobs N: process-wide default domain count for parallel sections. *)
  let rec strip_jobs = function
    | "--jobs" :: n :: rest ->
      (match int_of_string_opt n with
      | Some j when j >= 1 -> Parallel.set_default_jobs j
      | Some _ | None ->
        Printf.eprintf "bench: --jobs must be a positive integer\n";
        exit 124);
      strip_jobs rest
    | a :: rest -> a :: strip_jobs rest
    | [] -> []
  in
  let args = strip_jobs args in
  let selected =
    match args with [] | [ "all" ] -> List.map fst experiments | names -> names
  in
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some run ->
        Printf.printf "\n###### %s ######\n%!" name;
        let t = Unix.gettimeofday () in
        run ();
        Printf.printf "[%s took %.1fs]\n%!" name (Unix.gettimeofday () -. t)
      | None ->
        Printf.eprintf "unknown experiment %S; known: %s\n" name
          (String.concat ", " (List.map fst experiments)))
    selected;
  Printf.printf "\nTotal bench time: %.1fs\n%!" (Unix.gettimeofday () -. t0)
