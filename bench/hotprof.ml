(* Micro-profiler for the event-loop hot path: ns/op and minor words/op
   for each stage, plus whole-machine throughput.  Build with
   --profile release or the numbers are fiction (dev blocks cross-module
   inlining).  Not wired into CI; the committed trajectory point lives in
   BENCH_simperf.json via `bench/main.exe simperf`. *)
open Wsc_substrate
module Malloc = Wsc_tcmalloc.Malloc
module Backend = Wsc_backend.Backend
module Telemetry = Wsc_tcmalloc.Telemetry
module Topology = Wsc_hw.Topology
module Profile = Wsc_workload.Profile
module Apps = Wsc_workload.Apps
module Machine = Wsc_fleet.Machine

let time name n f =
  let g0 = Gc.quick_stat () in
  let t0 = Unix.gettimeofday () in
  f n;
  let dt = Unix.gettimeofday () -. t0 in
  let g1 = Gc.quick_stat () in
  Printf.printf "%-32s %8.1f ns/op  %6.2f minor words/op\n%!" name
    (dt *. 1e9 /. float_of_int n)
    ((g1.Gc.minor_words -. g0.Gc.minor_words) /. float_of_int n)

let () =
  let rng = Rng.create 7 in
  let profile = Apps.fleet in
  time "Rng.unit_float" 10_000_000 (fun n ->
      let acc = ref 0.0 in
      for _ = 1 to n do acc := !acc +. Rng.unit_float rng done;
      ignore !acc);
  time "Dist.sample fleet_size" 10_000_000 (fun n ->
      let acc = ref 0.0 in
      for _ = 1 to n do acc := !acc +. Dist.sample Profile.fleet_size_dist rng done;
      ignore !acc);
  time "Profile.sample_size" 10_000_000 (fun n ->
      let acc = ref 0 in
      for _ = 1 to n do acc := !acc + Profile.sample_size ~now:1e9 profile rng done;
      ignore !acc);
  time "Profile.sample_lifetime s=64" 10_000_000 (fun n ->
      let acc = ref 0.0 in
      for _ = 1 to n do acc := !acc +. Profile.sample_lifetime profile rng ~size:64 done;
      ignore !acc);
  let heap = Event_heap.create () in
  time "Event_heap push+pop (1e5 live)" 5_000_000 (fun n ->
      for i = 1 to 100_000 do
        Event_heap.push heap (Rng.unit_float rng) ~a:i ~b:i ~c:i
      done;
      for i = 1 to n do
        Event_heap.push heap (Rng.unit_float rng +. 0.5) ~a:i ~b:i ~c:i;
        Event_heap.drain_until heap (Event_heap.min_key heap) (fun ~key:_ ~a:_ ~b:_ ~c:_ -> ())
      done;
      Event_heap.clear heap);
  let cal = Calendar.create () in
  time "Calendar push+pop (1e5 live)" 5_000_000 (fun n ->
      for i = 1 to 100_000 do
        Calendar.push cal (Rng.unit_float rng *. 1e6) ~a:i ~b:i ~c:i
      done;
      let now = ref 0.0 in
      for i = 1 to n do
        Calendar.push cal (!now +. (Rng.unit_float rng *. 1e5)) ~a:i ~b:i ~c:i;
        now := !now +. 20.0;
        Calendar.drain_until cal !now (fun ~key:_ ~a:_ ~b:_ ~c:_ -> ())
      done;
      Calendar.clear cal);
  let itbl = Int_table.create () in
  time "Int_table set+remove" 5_000_000 (fun n ->
      for i = 1 to n do
        Int_table.set itbl (i land 0xffff) 1;
        Int_table.remove itbl (i land 0xffff)
      done);
  time "Int_table mem miss" 5_000_000 (fun n ->
      let acc = ref 0 in
      for i = 1 to n do
        if Int_table.mem itbl i then incr acc
      done;
      ignore !acc);
  let tbl : (int, unit) Hashtbl.t = Hashtbl.create 4096 in
  time "Hashtbl replace+remove" 5_000_000 (fun n ->
      for i = 1 to n do
        Hashtbl.replace tbl (i land 0xffff) ();
        Hashtbl.remove tbl (i land 0xffff)
      done);
  time "Hashtbl find_opt miss" 5_000_000 (fun n ->
      let acc = ref 0 in
      for i = 1 to n do
        match Hashtbl.find_opt tbl i with Some () -> incr acc | None -> ()
      done;
      ignore !acc);
  let tel = Wsc_tcmalloc.Telemetry.create () in
  time "Telemetry.record_alloc" 5_000_000 (fun n ->
      for i = 1 to n do
        Wsc_tcmalloc.Telemetry.record_alloc tel ~requested:(64 + (i land 63)) ~rounded:64
      done);
  let clock = Clock.create () in
  let malloc = Malloc.create ~topology:Topology.uniprocessor ~clock () in
  (* page-map lookup against a warm heap *)
  let addrs = Array.init 1000 (fun _ -> Malloc.malloc malloc ~cpu:0 ~size:64) in
  let ph = Malloc.pageheap malloc in
  time "Pageheap.span_of_addr" 5_000_000 (fun n ->
      let acc = ref 0 in
      for i = 1 to n do
        match Wsc_tcmalloc.Pageheap.span_of_addr ph addrs.(i land 999) with
        | Some _ -> incr acc
        | None -> ()
      done;
      ignore !acc);
  Array.iter (fun a -> Malloc.free malloc ~cpu:0 a ~size:64) addrs;
  time "malloc+free 64B pair" 2_000_000 (fun n ->
      for _ = 1 to n do
        let a = Malloc.malloc malloc ~cpu:0 ~size:64 in
        Malloc.free malloc ~cpu:0 a ~size:64
      done);
  (* whole-machine throughput, short *)
  let machine = Machine.create ~seed:42 ~platform:Topology.default ~jobs:[ Apps.fleet ] () in
  Machine.run machine ~duration_ns:(5.0 *. Units.sec) ~epoch_ns:Units.ms;
  let job = List.hd (Machine.jobs machine) in
  let tel = Backend.telemetry job.Machine.backend in
  let e0 = Telemetry.alloc_count tel + Telemetry.free_count tel in
  let g0 = Gc.quick_stat () in
  let t0 = Unix.gettimeofday () in
  Machine.run machine ~duration_ns:(20.0 *. Units.sec) ~epoch_ns:Units.ms;
  let wall = Unix.gettimeofday () -. t0 in
  let g1 = Gc.quick_stat () in
  let events = Telemetry.alloc_count tel + Telemetry.free_count tel - e0 in
  Printf.printf "machine: %.0f events/sec, %.1f minor words/event, %.1f ns/event\n%!"
    (float_of_int events /. wall)
    ((g1.Gc.minor_words -. g0.Gc.minor_words) /. float_of_int events)
    (wall *. 1e9 /. float_of_int events)
