(* Bit-identity reference harness: digests RNG streams, machine runs, and
   fleet outcomes on pinned seeds.  Capture the output at a known-good
   revision, rework a hot path, and diff — any changed digest means the
   seeded streams moved.  Not wired into CI (the smoke gates cover
   regressions there); kept as the working tool for the next hot-path
   surgery. *)
open Wsc_substrate
module Machine = Wsc_fleet.Machine
module Fleet = Wsc_fleet.Fleet
module Apps = Wsc_workload.Apps
module Profile = Wsc_workload.Profile
module Topology = Wsc_hw.Topology

let () =
  (* Machine-level outcome digest: covers driver event order, malloc state,
     telemetry, and the pending-free queue discipline. *)
  let m =
    Machine.create ~seed:42 ~platform:Topology.default
      ~jobs:[ Apps.fleet; Apps.monarch ] ()
  in
  Machine.run m ~duration_ns:(3.0 *. Units.sec) ~epoch_ns:Units.ms;
  let s = Machine.summary m in
  Printf.printf "machine digest %s\n" (Digest.to_hex s.Machine.sm_digest);
  (* Fleet sampling streams: categorical platform mix + zipf binary draws. *)
  let f = Fleet.create ~seed:7 ~num_machines:6 ~num_binaries:50 () in
  let sums = Fleet.run f ~jobs:1 ~duration_ns:(0.5 *. Units.sec) ~epoch_ns:Units.ms in
  List.iter
    (fun s -> Printf.printf "fleet machine %s\n" (Digest.to_hex s.Machine.sm_digest))
    sums;
  (* Raw distribution streams, hex-exact. *)
  let rng = Rng.create 99 in
  let buf = Buffer.create 4096 in
  for _ = 1 to 2000 do
    Buffer.add_string buf
      (Printf.sprintf "%d %d %h %h\n"
         (Dist.zipf rng ~n:50 ~s:0.9)
         (Dist.categorical rng Fleet.platform_mix)
         (Dist.sample Profile.fleet_size_dist rng)
         (Profile.sample_lifetime Apps.fleet rng ~size:512))
  done;
  Printf.printf "dist stream digest %s\n"
    (Digest.to_hex (Digest.string (Buffer.contents buf)));
  (* Drained-to-empty driver counters (exercises drain_until infinity). *)
  let job = List.hd (Machine.jobs m) in
  Wsc_workload.Driver.drain job.Machine.driver;
  Printf.printf "post-drain live %d allocs %d\n"
    (Wsc_workload.Driver.live_objects job.Machine.driver)
    (Wsc_workload.Driver.allocations job.Machine.driver)
